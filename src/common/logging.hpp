// Minimal leveled logging to stderr. Benches and examples use this for
// progress lines; the library itself logs only at Debug level.
#pragma once

#include <sstream>
#include <string>

namespace ganopc {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are dropped. Defaults to Info.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace ganopc

#define GANOPC_LOG(level, expr)                                      \
  do {                                                               \
    if (static_cast<int>(level) >= static_cast<int>(::ganopc::log_level())) { \
      std::ostringstream oss_;                                       \
      oss_ << expr;                                                  \
      ::ganopc::detail::log_emit(level, oss_.str());                 \
    }                                                                \
  } while (0)

#define GANOPC_INFO(expr) GANOPC_LOG(::ganopc::LogLevel::Info, expr)
#define GANOPC_WARN(expr) GANOPC_LOG(::ganopc::LogLevel::Warn, expr)
#define GANOPC_DEBUG(expr) GANOPC_LOG(::ganopc::LogLevel::Debug, expr)
