#include "common/backoff.hpp"

#include <algorithm>

namespace ganopc {

namespace {

// splitmix64: tiny, stateless, excellent avalanche — ideal for turning a
// (key, attempt) pair into an independent jitter draw.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

double backoff_delay_s(double base_s, double cap_s, int attempt,
                       std::uint64_t key) {
  if (attempt <= 0 || base_s <= 0.0) return 0.0;
  // 2^(attempt-1) without pow(); saturate well past any sane cap.
  const int shift = std::min(attempt - 1, 62);
  const double raw = base_s * static_cast<double>(1ULL << shift);
  const std::uint64_t h = splitmix64(key ^ (0xA0761D6478BD642FULL *
                                            static_cast<std::uint64_t>(attempt)));
  // 53 random bits -> uniform in [0, 1); jitter factor in [0.5, 1.5).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return std::min(cap_s > 0.0 ? cap_s : raw, raw * (0.5 + u));
}

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : text)
    h = (h ^ static_cast<std::uint64_t>(static_cast<unsigned char>(c))) *
        1099511628211ULL;
  return h;
}

}  // namespace ganopc
