// Typed error taxonomy for the batch inference stack.
//
// The library's original contract was GANOPC_CHECK-or-UB: precondition
// violations throw an untyped ganopc::Error and everything else is assumed
// well-formed. That is fine for a single interactive run, but a fleet-scale
// batch pipeline needs to tell *what kind* of failure hit each clip — a
// malformed GDS record (skip the clip, keep the batch), a NaN out of the
// litho stack (retry with a perturbed restart), a stalled ILT loop (fall
// back to MB-OPC), a blown deadline (report and move on).
//
// Three pieces:
//   StatusCode / Status  — the taxonomy: a code plus a human-readable message.
//   StatusOr<T>          — value-or-Status for APIs that prefer returns over
//                          exceptions (e.g. gds::try_read_gds).
//   StatusError          — a ganopc::Error subclass carrying a Status, so the
//                          existing throw-based hot paths can raise *typed*
//                          failures without changing their signatures, and
//                          every existing EXPECT_THROW(..., Error) keeps
//                          passing. BatchRunner catches at the clip boundary
//                          and maps exception -> Status -> manifest row.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "common/error.hpp"

namespace ganopc {

enum class StatusCode : int {
  kOk = 0,
  kInvalidInput,       ///< malformed GDS/layout/config/geometry
  kLithoNumeric,       ///< NaN/Inf out of the lithography stack
  kIltStalled,         ///< ILT terminated without an acceptable mask
  kDeadlineExceeded,   ///< wall-clock budget exhausted
  kIo,                 ///< file missing / unreadable / write failure
  kCancelled,          ///< stopped by an external request
  kInternal,           ///< unclassified invariant failure
  kQuarantined,        ///< poison clip: crashed K worker processes in a row
};

/// Stable machine-readable name ("InvalidInput", ...) used in manifests.
const char* status_code_name(StatusCode code);

/// Inverse of status_code_name; throws ganopc::Error on an unknown name.
StatusCode status_code_from_name(const std::string& name);

class Status {
 public:
  Status() = default;  ///< Ok
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "LithoNumeric: non-finite gradient at iteration 12"
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Exception form of a non-ok Status. Derives from ganopc::Error so callers
/// that only know about the untyped contract still catch it.
class StatusError : public Error {
 public:
  StatusError(StatusCode code, const std::string& message)
      : Error(std::string(status_code_name(code)) + ": " + message), code_(code),
        message_(message) {}

  StatusCode code() const { return code_; }
  Status status() const { return Status(code_, message_); }

 private:
  StatusCode code_;
  std::string message_;
};

/// Map an in-flight exception to a Status: StatusError keeps its code, any
/// other ganopc::Error becomes kInternal, anything else kInternal too.
Status status_from_exception(const std::exception& e);

/// Value-or-error return. Holds either a T (ok) or a non-ok Status.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    GANOPC_CHECK_MSG(!status_.ok(), "StatusOr constructed from an Ok status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// The held value; throws StatusError when not ok.
  const T& value() const& {
    if (!ok()) throw StatusError(status_.code(), status_.message());
    return *value_;
  }
  T& value() & {
    if (!ok()) throw StatusError(status_.code(), status_.message());
    return *value_;
  }
  T&& value() && {
    if (!ok()) throw StatusError(status_.code(), status_.message());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  ///< Ok iff value_ holds
  std::optional<T> value_;
};

}  // namespace ganopc

/// Typed precondition check: throws StatusError with the given code.
#define GANOPC_TYPED_CHECK(code, cond, msg)                      \
  do {                                                           \
    if (!(cond)) {                                               \
      std::ostringstream oss_;                                   \
      oss_ << msg;                                               \
      throw ::ganopc::StatusError((code), oss_.str());           \
    }                                                            \
  } while (0)
