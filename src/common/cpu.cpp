#include "common/cpu.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace ganopc {

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "?";
}

bool cpu_supports_avx2_fma() {
#if defined(__x86_64__) || defined(__i386__)
  // libgcc's resolver checks CPUID *and* OSXSAVE/XCR0, so "supported" here
  // really means "the OS will preserve ymm state across context switches".
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

SimdLevel resolve_simd_level(const char* env, bool hw_avx2, bool* recognized) {
  if (recognized != nullptr) *recognized = true;
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0)
    return hw_avx2 ? SimdLevel::kAvx2 : SimdLevel::kScalar;
  if (std::strcmp(env, "scalar") == 0) return SimdLevel::kScalar;
  if (std::strcmp(env, "avx2") == 0)
    return hw_avx2 ? SimdLevel::kAvx2 : SimdLevel::kScalar;
  if (recognized != nullptr) *recognized = false;
  return hw_avx2 ? SimdLevel::kAvx2 : SimdLevel::kScalar;
}

namespace {

/// -1 = unresolved; otherwise a SimdLevel value. One relaxed atomic is enough:
/// resolution is idempotent, so a racing first call computes the same answer.
std::atomic<int> g_level{-1};

SimdLevel resolve_from_environment() {
  const char* env = std::getenv("GANOPC_SIMD");
  const bool hw = cpu_supports_avx2_fma();
  bool recognized = true;
  const SimdLevel level = resolve_simd_level(env, hw, &recognized);
  if (!recognized)
    GANOPC_WARN("GANOPC_SIMD='" << env
                                    << "' not recognised (scalar|avx2|auto); using auto");
  if (env != nullptr && std::strcmp(env, "avx2") == 0 && !hw)
    GANOPC_WARN("GANOPC_SIMD=avx2 requested but CPU lacks AVX2+FMA; "
                    "falling back to scalar kernels");
  return level;
}

}  // namespace

SimdLevel simd_level() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(resolve_from_environment());
    g_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(v);
}

void set_simd_level(SimdLevel level) {
  GANOPC_CHECK_MSG(level != SimdLevel::kAvx2 || cpu_supports_avx2_fma(),
                   "cannot force AVX2 kernels on hardware without AVX2+FMA");
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

}  // namespace ganopc
