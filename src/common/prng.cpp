#include "common/prng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ganopc {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Prng::Prng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Prng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Prng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Prng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Prng::randint(std::int64_t lo, std::int64_t hi) {
  GANOPC_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
  // Lemire-style rejection-free-enough bounded draw (unbiased via rejection).
  const std::uint64_t limit = Prng::max() - Prng::max() % span;
  std::uint64_t r;
  do {
    r = (*this)();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % span);
}

double Prng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Prng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Prng::bernoulli(double p) { return uniform() < p; }

Prng Prng::split() {
  Prng child(0);
  for (auto& s : child.s_) s = (*this)();
  return child;
}

Prng::State Prng::state() const {
  State st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.cached_normal = cached_normal_;
  st.has_cached_normal = has_cached_normal_;
  return st;
}

void Prng::set_state(const State& state) {
  GANOPC_CHECK_MSG(state.s[0] || state.s[1] || state.s[2] || state.s[3],
                   "Prng: refusing all-zero state (generator would be stuck)");
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

}  // namespace ganopc
