#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/atomic_file.hpp"
#include "common/cpu.hpp"
#include "common/failpoint.hpp"
#include "common/net.hpp"
#include "common/sectioned_file.hpp"
#include "common/status.hpp"
#include "common/version.hpp"
#include "engine/clip_io.hpp"
#include "litho/kernels.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ganopc::serve {

namespace {

constexpr std::size_t kReadChunk = 64u << 10;
constexpr double kEwmaAlpha = 0.3;

bool valid_request_id(const std::string& id) {
  if (id.empty() || id.size() > 64 || id[0] == '.') return false;
  return std::all_of(id.begin(), id.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
  });
}

int http_code_for(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 200;
    case StatusCode::kInvalidInput: return 400;
    case StatusCode::kDeadlineExceeded: return 504;
    case StatusCode::kCancelled: return 503;
    case StatusCode::kQuarantined: return 502;
    case StatusCode::kInternal: return 500;
    default: return 422;  // kLithoNumeric / kIltStalled / kIo: bad input data
  }
}

std::string error_body(const std::string& id, const std::string& error,
                       StatusCode code = StatusCode::kInternal) {
  json::Value obj = json::Value::object();
  if (!id.empty()) obj.set("id", json::Value::string(id));
  obj.set("ok", json::Value::boolean(false));
  obj.set("code", json::Value::string(status_code_name(code)));
  obj.set("error", json::Value::string(error));
  return obj.dump();
}

std::string retry_after(double seconds) {
  return std::to_string(
      std::max(1L, std::lround(std::ceil(std::max(0.0, seconds)))));
}

// ---- per-request stage attribution (DESIGN.md §16) ----

struct StageSeconds {
  double queue_s = 0.0;     ///< admission -> supervisor dispatch
  double dispatch_s = 0.0;  ///< dispatch -> worker pickup (pipe transit)
  double decode_s = 0.0;    ///< layout load/parse inside the worker
  double litho_s = 0.0;     ///< aerial/gradient/pv-band simulation
  double ilt_s = 0.0;       ///< ILT solver wall time
  double encode_s = 0.0;    ///< result row + mask PGM encoding
};

void encode_stages(ByteWriter& w, const StageSeconds& s) {
  w.pod<double>(s.queue_s);
  w.pod<double>(s.dispatch_s);
  w.pod<double>(s.decode_s);
  w.pod<double>(s.litho_s);
  w.pod<double>(s.ilt_s);
  w.pod<double>(s.encode_s);
}

StageSeconds decode_stages(ByteReader& r) {
  StageSeconds s;
  s.queue_s = r.pod<double>();
  s.dispatch_s = r.pod<double>();
  s.decode_s = r.pod<double>();
  s.litho_s = r.pod<double>();
  s.ilt_s = r.pod<double>();
  s.encode_s = r.pod<double>();
  return s;
}

/// Sum of a named histogram's observations, 0 when absent.
double hist_sum(const obs::Snapshot& snap, std::string_view name) {
  const obs::HistogramSnapshot* h = snap.find_histogram(name);
  return h != nullptr ? h->sum : 0.0;
}

/// Total litho seconds: every `litho.*.seconds` duration histogram.
double litho_seconds(const obs::Snapshot& snap) {
  double total = 0.0;
  for (const auto& h : snap.histograms) {
    if (h.name.rfind("litho.", 0) == 0 && h.name.size() > 8 &&
        h.name.compare(h.name.size() - 8, 8, ".seconds") == 0)
      total += h.sum;
  }
  return total;
}

std::string hex_id(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string format_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", s);
  return buf;
}

}  // namespace

Server::Server(const engine::Engine& engine, ServeConfig serve)
    : engine_(engine),
      serve_(std::move(serve)),
      has_generator_(engine.generator() != nullptr) {
  GANOPC_TYPED_CHECK(StatusCode::kInvalidInput, serve_.workers >= 1,
                     "serve: workers must be >= 1");
  GANOPC_TYPED_CHECK(StatusCode::kInvalidInput, serve_.max_queue >= 1,
                     "serve: max-queue must be >= 1");
}

Server::~Server() {
  for (auto& [fd, conn] : conns_) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

proc::SupervisorConfig Server::supervisor_config() {
  proc::SupervisorConfig cfg;
  cfg.workers = serve_.workers;
  cfg.quarantine_kills = serve_.quarantine_kills;
  cfg.heartbeat_timeout_s = serve_.heartbeat_timeout_s;
  cfg.limits.mem_mb = serve_.worker_mem_mb;
  cfg.limits.cpu_s = serve_.worker_cpu_s;
  cfg.seed = serve_.seed;
  // Workers fork while connections are live; a child holding a dup of a
  // client socket would keep the connection half-open after the daemon hangs
  // up, so every inherited serve fd is closed right after fork.
  cfg.child_setup = [this] {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    for (auto& [fd, conn] : conns_) ::close(fd);
  };
  return cfg;
}

// ---------------------------------------------------------------- worker side

std::string Server::worker_entry(const std::string& payload, int crashes) const {
  const std::uint64_t recv_ns = obs::monotonic_ns();
  ByteReader r(payload.data(), payload.size(), "serve task payload");
  const std::string id = r.str(64);
  const std::string spool = r.str(4096);
  const double deadline_abs_s = r.pod<double>();
  const bool want_mask = r.pod<std::uint8_t>() != 0;
  const bool degraded = r.pod<std::uint8_t>() != 0;
  const std::uint64_t admit_ns = r.pod<std::uint64_t>();

  engine::maybe_inject_clip_fault(id, crashes);

  // Stage attribution (DESIGN.md §16): queue/dispatch from the wire-carried
  // clocks (workers are fork twins, CLOCK_MONOTONIC is shared), decode/
  // litho/ILT from per-task deltas of the engine's duration histograms.
  const proc::TaskHeader th = proc::current_task_header();
  StageSeconds stages;
  if (admit_ns != 0 && th.dispatch_ns >= admit_ns)
    stages.queue_s = static_cast<double>(th.dispatch_ns - admit_ns) * 1e-9;
  if (th.dispatch_ns != 0 && recv_ns >= th.dispatch_ns)
    stages.dispatch_s = static_cast<double>(recv_ns - th.dispatch_ns) * 1e-9;
  if (th.trace_id != 0 && admit_ns != 0 && th.dispatch_ns >= admit_ns) {
    // Trace-only (the supervisor owns the serve.stage.* histograms; a
    // metric here would double-count once the delta merges).
    static const obs::SpanSite& queue_site =
        obs::span_site("serve.stage.queue");
    obs::record_span(queue_site, admit_ns, th.dispatch_ns, th.trace_id,
                     obs::next_span_id(), th.parent_span,
                     /*with_metrics=*/false);
  }

  const bool track_stages = obs::metrics_enabled();
  obs::Snapshot before;
  if (track_stages) before = obs::snapshot();

  engine::MaskResult result;
  const double remaining_s = deadline_abs_s - net::now_s();
  if (remaining_s <= 0.0) {
    // The request's budget burned away in the queue; answer without paying
    // for an optimization nobody is waiting for.
    result.row.id = id;
    result.row.source = spool;
    result.row.code = StatusCode::kDeadlineExceeded;
    result.row.error = "deadline expired before the request reached a worker";
  } else {
    const int rungs = has_generator_ ? 3 : 2;
    int start_rung = degraded ? rungs - 1 : 0;
    start_rung = std::min(start_rung + crashes, rungs - 1);
    engine::SubmitOptions opts;
    opts.deadline_s = remaining_s;
    opts.start_rung = start_rung;
    opts.want_mask = want_mask;
    // Thread the proc-installed request context through SubmitOptions so
    // the engine's spans nest under the proc.task span.
    const obs::TraceContext tc = obs::trace_context();
    opts.trace_id = tc.trace_id;
    opts.parent_span = tc.parent_span;
    result = engine_.submit(engine::BatchClip{id, spool, {}}, opts);
  }

  if (track_stages) {
    const obs::Snapshot after = obs::snapshot();
    stages.decode_s = hist_sum(after, "batch.load_clip.seconds") -
                      hist_sum(before, "batch.load_clip.seconds");
    stages.litho_s = litho_seconds(after) - litho_seconds(before);
    stages.ilt_s = hist_sum(after, "ilt.optimize.seconds") -
                   hist_sum(before, "ilt.optimize.seconds");
  }

  const std::uint64_t encode_start_ns = obs::monotonic_ns();
  ByteWriter w;
  engine::encode_clip_result(w, result.row);
  const bool has_mask =
      want_mask && result.row.ok() && !result.mask.data.empty();
  w.pod<std::uint8_t>(has_mask ? 1 : 0);
  if (has_mask) w.str(engine::encode_mask_pgm(result.mask));
  const std::uint64_t encode_end_ns = obs::monotonic_ns();
  stages.encode_s =
      static_cast<double>(encode_end_ns - encode_start_ns) * 1e-9;
  if (th.trace_id != 0) {
    static const obs::SpanSite& encode_site =
        obs::span_site("serve.stage.encode");
    obs::record_span(encode_site, encode_start_ns, encode_end_ns, th.trace_id,
                     obs::next_span_id(), obs::trace_context().parent_span,
                     /*with_metrics=*/false);
  }
  encode_stages(w, stages);
  return w.buffer();
}

// ------------------------------------------------------------------- startup

void Server::setup_spool() {
  spool_dir_ = serve_.spool_dir.empty()
                   ? "/tmp/ganopc-serve-" + std::to_string(::getpid())
                   : serve_.spool_dir;
  if (::mkdir(spool_dir_.c_str(), 0700) != 0 && errno != EEXIST)
    GANOPC_TYPED_CHECK(StatusCode::kIo, false,
                       "serve: cannot create spool dir " << spool_dir_ << ": "
                                                         << std::strerror(errno));
}

void Server::setup_listener() {
  if (!serve_.unix_socket.empty()) {
    listen_fd_ = net::listen_unix(serve_.unix_socket);
    std::printf("ganopc serve: listening on %s (%d workers)\n",
                serve_.unix_socket.c_str(), serve_.workers);
  } else {
    listen_fd_ = net::listen_tcp(serve_.host, serve_.port);
    const int port = net::bound_port(listen_fd_);
    std::printf("ganopc serve: listening on %s:%d (%d workers)\n",
                serve_.host.c_str(), port, serve_.workers);
    if (!serve_.port_file.empty())
      atomic_write_file(serve_.port_file,
                        [&](std::ostream& out) { out << port << "\n"; });
  }
  std::fflush(stdout);
}

// ----------------------------------------------------------------- main loop

int Server::run() {
  setup_spool();
  setup_listener();
  supervisor_ = std::make_unique<proc::Supervisor>(
      supervisor_config(),
      [this](const std::string& payload, int crashes) {
        return worker_entry(payload, crashes);
      });
  supervisor_->start([this](const proc::TaskResult& r) { on_result(r); });

  if (obs::ledger_enabled()) {
    obs::LedgerRecord rec("serve_start");
    rec.field("workers", serve_.workers)
        .field("max_queue", serve_.max_queue)
        .field("default_deadline_s", serve_.default_deadline_s);
    obs::ledger_emit(rec);
  }

  while (true) {
    double now = net::now_s();
    if (!draining_ && serve_.stop != nullptr &&
        serve_.stop->load(std::memory_order_relaxed))
      begin_drain();
    if (draining_) {
      const bool out_pending = std::any_of(
          conns_.begin(), conns_.end(),
          [](const auto& kv) { return kv.second.out.size() > kv.second.out_off; });
      if (pending_.empty() && !out_pending) break;
      if (now > drain_deadline_s_) {
        // Grace exhausted: cancel what never dispatched, deadline-out the
        // rest, and leave — every request still gets a typed answer.
        supervisor_->set_dispatch_enabled(false);
        supervisor_->cancel_queued("cancelled: serve drain grace expired");
        fail_all_pending(504, "serve drained before the request finished");
        break;
      }
    }

    std::vector<struct pollfd> fds;
    if (!draining_ && listen_fd_ >= 0 &&
        conns_.size() < static_cast<std::size_t>(serve_.max_conns))
      fds.push_back({listen_fd_, POLLIN, 0});
    const std::size_t conn_base = fds.size();
    std::vector<int> conn_fds;
    for (auto& [fd, conn] : conns_) {
      short events = 0;
      if (!conn.awaiting_result && conn.out.size() == conn.out_off &&
          conn.parser.state() == ParseState::NeedMore)
        events |= POLLIN;
      if (conn.out.size() > conn.out_off) events |= POLLOUT;
      if (events == 0) continue;
      fds.push_back({fd, events, 0});
      conn_fds.push_back(fd);
    }
    supervisor_->collect_poll_fds(fds);
    (void)::poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);

    if (conn_base > 0 && (fds[0].revents & POLLIN) != 0) accept_clients();
    for (std::size_t i = 0; i < conn_fds.size(); ++i) {
      const auto it = conns_.find(conn_fds[i]);
      if (it == conns_.end()) continue;
      const short re = fds[conn_base + i].revents;
      if ((re & (POLLERR | POLLNVAL)) != 0) {
        close_conn(it->first);
        continue;
      }
      if ((re & (POLLIN | POLLHUP)) != 0) read_conn(it->second);
    }
    // Flush every connection with queued bytes (not just POLLOUT hits): the
    // trickle failpoint and freshly queued responses want a write attempt
    // even when the previous poll did not ask for writability.
    for (auto it = conns_.begin(); it != conns_.end();) {
      Conn& conn = (it++)->second;
      if (conn.out.size() > conn.out_off) flush_conn(conn);
    }

    try {
      supervisor_->pump(0.0);
    } catch (const StatusError& e) {
      // Every worker slot retired: the daemon survives in degraded form —
      // pending requests get typed 503s and /readyz reports unready.
      if (!pool_dead_) {
        pool_dead_ = true;
        std::fprintf(stderr, "ganopc serve: worker pool lost: %s\n", e.what());
        if (obs::ledger_enabled()) {
          obs::LedgerRecord rec("serve_pool_lost");
          rec.field("error", e.what());
          obs::ledger_emit(rec);
        }
        fail_all_pending(503, std::string("worker pool lost: ") + e.what());
      }
    }
    observe_deaths();
    now = net::now_s();
    sweep_timeouts(now);
    if (obs::metrics_enabled()) {
      obs::gauge("serve.queue.depth").set(static_cast<double>(queued_depth()));
      obs::gauge("serve.inflight")
          .set(static_cast<double>(supervisor_->inflight()));
    }
  }

  supervisor_->shutdown(2.0);
  for (auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!serve_.unix_socket.empty()) ::unlink(serve_.unix_socket.c_str());
  ::rmdir(spool_dir_.c_str());  // best effort; spool files are per-request
  if (obs::ledger_enabled()) {
    obs::LedgerRecord rec("serve_stop");
    rec.field("requests", requests_)
        .field("completed", completed_)
        .field("worker_deaths",
               static_cast<std::int64_t>(supervisor_->crash_reports().size()));
    obs::ledger_emit(rec);
  }
  std::printf("ganopc serve: drained (%lld request(s) answered, %zu worker death(s))\n",
              static_cast<long long>(completed_),
              supervisor_->crash_reports().size());
  return 0;
}

// -------------------------------------------------------------- connections

void Server::accept_clients() {
  for (;;) {
    const int fd = net::accept_client(listen_fd_);
    if (fd < 0) return;
    if (GANOPC_FAILPOINT("serve.accept_fault")) {
      // Simulated transient accept-path fault: the connection is dropped on
      // the floor and the daemon moves on.
      obs::counter("serve.conns.dropped").inc();
      ::close(fd);
      continue;
    }
    Conn conn;
    conn.fd = fd;
    conn.serial = next_serial_++;
    conn.parser = HttpRequestParser(
        HttpLimits{16u << 10, serve_.max_body_bytes});
    conn.io_deadline_s = net::now_s() + serve_.read_timeout_s;
    conn.slow_trickle = GANOPC_FAILPOINT("serve.slow_client");
    obs::counter("serve.conns.accepted").inc();
    conns_.emplace(fd, std::move(conn));
  }
}

void Server::close_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  ::close(fd);
  conns_.erase(it);
}

void Server::read_conn(Conn& conn) {
  char buf[kReadChunk];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n == 0) {
      close_conn(conn.fd);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      close_conn(conn.fd);
      return;
    }
    const ParseState st = conn.parser.feed(buf, static_cast<std::size_t>(n));
    if (st == ParseState::Error) {
      obs::counter("serve.http.malformed").inc();
      conn.close_after_flush = true;
      respond(conn, conn.parser.error_code(),
              error_body("", conn.parser.error_reason(),
                         StatusCode::kInvalidInput));
      return;
    }
    if (st == ParseState::Complete) {
      const HttpRequest req = conn.parser.request();
      conn.parser.reset();
      handle_request(conn, req);
      return;
    }
  }
}

void Server::flush_conn(Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    // serve.slow_client armed at accept: trickle one byte per loop tick so
    // the write path's partial-write handling and write deadline are
    // exercised deterministically.
    const std::size_t n =
        conn.slow_trickle ? 1 : conn.out.size() - conn.out_off;
    const ssize_t w = ::send(conn.fd, conn.out.data() + conn.out_off, n,
                             MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      close_conn(conn.fd);
      return;
    }
    conn.out_off += static_cast<std::size_t>(w);
    if (conn.slow_trickle) return;  // one byte per tick
  }
  conn.out.clear();
  conn.out_off = 0;
  if (conn.close_after_flush) {
    close_conn(conn.fd);
    return;
  }
  // Keep-alive: arm the idle/read deadline for the next request.
  conn.io_deadline_s = net::now_s() + serve_.read_timeout_s;
}

void Server::sweep_timeouts(double now) {
  std::vector<int> doomed;
  std::vector<int> loris;
  for (auto& [fd, conn] : conns_) {
    if (conn.awaiting_result || conn.io_deadline_s <= 0.0 ||
        now <= conn.io_deadline_s)
      continue;
    if (conn.out.size() > conn.out_off) {
      // Stalled reader: the response would not drain within write_timeout_s.
      obs::counter("serve.conns.write_timeout").inc();
      doomed.push_back(fd);
    } else if (conn.parser.started()) {
      loris.push_back(fd);
    } else {
      doomed.push_back(fd);  // idle keep-alive connection
    }
  }
  for (const int fd : doomed) close_conn(fd);
  for (const int fd : loris) {
    // Slow-loris: bytes arrived but never a full request. Answer 408 and
    // hang up (outside the sweep above — respond() may close + erase).
    const auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    obs::counter("serve.conns.read_timeout").inc();
    it->second.close_after_flush = true;
    respond(it->second, 408,
            error_body("", "request not received within timeout",
                       StatusCode::kDeadlineExceeded));
  }
}

void Server::respond(
    Conn& conn, int code, const std::string& body,
    std::string_view content_type,
    const std::vector<std::pair<std::string, std::string>>& extra) {
  conn.out = http_response(code, body, content_type, extra,
                           conn.close_after_flush);
  conn.out_off = 0;
  conn.awaiting_result = false;
  conn.io_deadline_s = net::now_s() + serve_.write_timeout_s;
  flush_conn(conn);
}

// ----------------------------------------------------------------- requests

void Server::handle_request(Conn& conn, const HttpRequest& req) {
  if (req.wants_close()) conn.close_after_flush = true;
  const std::string path = req.path();
  if (path == "/v1/optimize") {
    if (req.method != "POST") {
      respond(conn, 405, error_body("", "use POST", StatusCode::kInvalidInput));
      return;
    }
    handle_optimize(conn, req);
    return;
  }
  if (req.method != "GET" && req.method != "HEAD") {
    respond(conn, 405, error_body("", "use GET", StatusCode::kInvalidInput));
    return;
  }
  if (path == "/healthz") {
    respond(conn, 200, "{\"ok\":true}");
    return;
  }
  if (path == "/readyz") {
    const bool ready = !draining_ && !pool_dead_;
    json::Value obj = json::Value::object();
    obj.set("ready", json::Value::boolean(ready));
    obj.set("draining", json::Value::boolean(draining_));
    obj.set("breaker", json::Value::string(
                           breaker_open(net::now_s()) ? "open" : "closed"));
    obj.set("workers_lost",
            json::Value::number(
                static_cast<double>(supervisor_->crash_reports().size())));
    // Build/runtime identity: which binary, SIMD arm, and litho model this
    // fleet member actually runs (fleet-skew triage reads this first).
    obj.set("version", json::Value::string(std::string(build_version())));
    obj.set("simd", json::Value::string(simd_level_name(simd_level())));
    obj.set("litho_backend", json::Value::string(engine_.backend_name()));
    obj.set("tcc_kernels",
            json::Value::number(
                static_cast<double>(engine_.sim().kernels().count())));
    obj.set("captured_energy",
            json::Value::number(engine_.sim().kernels().captured_energy()));
    obj.set("workers", json::Value::number(static_cast<double>(serve_.workers)));
    respond(conn, ready ? 200 : 503, obj.dump());
    return;
  }
  if (path == "/metrics") {
    respond(conn, 200, obs::to_prometheus(obs::snapshot()),
            "text/plain; version=0.0.4");
    return;
  }
  respond(conn, 404, error_body("", "no such endpoint: " + path,
                                StatusCode::kInvalidInput));
}

void Server::handle_optimize(Conn& conn, const HttpRequest& req) {
  obs::counter("serve.requests.total").inc();
  ++requests_;
  const double now = net::now_s();

  if (draining_ || pool_dead_) {
    obs::counter("serve.rejected.unavailable").inc();
    respond(conn, 503,
            error_body("", draining_ ? "draining" : "worker pool lost",
                       StatusCode::kCancelled),
            "application/json", {{"Retry-After", "1"}});
    return;
  }
  const std::size_t queued = queued_depth();
  if (queued >= static_cast<std::size_t>(serve_.max_queue)) {
    obs::counter("serve.rejected.queue_full").inc();
    respond(conn, 503,
            error_body("", "request queue full", StatusCode::kCancelled),
            "application/json",
            {{"Retry-After", retry_after(std::max(1.0, ewma_task_s_))}});
    return;
  }

  // ---- decode the request body into (id, deadline, spooled clip) ----
  std::string id;
  double deadline_s = 0.0;
  std::string clip_bytes;
  std::string ext = ".txt";

  const std::string* ctype = req.header("Content-Type");
  const bool is_json =
      ctype != nullptr && ctype->rfind("application/json", 0) == 0;
  const bool is_gds =
      req.query_param("format") == "gds" ||
      (ctype != nullptr && ctype->rfind("application/octet-stream", 0) == 0);
  if (is_json) {
    json::Value doc;
    if (!json::try_parse(req.body, doc) || !doc.is_object()) {
      respond(conn, 400,
              error_body("", "request body is not valid JSON",
                         StatusCode::kInvalidInput));
      return;
    }
    id = doc.string_or("id", "");
    deadline_s = doc.number_or("deadline_s", 0.0);
    const json::Value* layout = doc.find("layout");
    if (layout == nullptr || !layout->is_string()) {
      respond(conn, 400,
              error_body(id, "JSON requests need a \"layout\" text field",
                         StatusCode::kInvalidInput));
      return;
    }
    clip_bytes = layout->as_string();
  } else {
    clip_bytes = req.body;
    if (is_gds) ext = ".gds";
  }
  if (clip_bytes.empty()) {
    respond(conn, 400,
            error_body(id, "empty request body", StatusCode::kInvalidInput));
    return;
  }
  if (id.empty()) {
    if (const std::string* h = req.header("X-Request-Id")) id = *h;
  }
  if (id.empty()) id = "req-" + std::to_string(requests_);
  if (!valid_request_id(id)) {
    respond(conn, 400,
            error_body("", "request id must match [A-Za-z0-9._-]{1,64}",
                       StatusCode::kInvalidInput));
    return;
  }
  if (pending_.count(id) != 0) {
    respond(conn, 400,
            error_body(id, "a request with this id is already in flight",
                       StatusCode::kInvalidInput));
    return;
  }
  if (deadline_s <= 0.0) {
    const std::string q = req.query_param("deadline_s");
    if (!q.empty()) deadline_s = std::atof(q.c_str());
  }
  if (deadline_s <= 0.0) {
    if (const std::string* h = req.header("X-Deadline-S"))
      deadline_s = std::atof(h->c_str());
  }
  if (deadline_s <= 0.0) deadline_s = serve_.default_deadline_s;
  deadline_s = std::min(deadline_s, serve_.max_deadline_s);

  // Deadline-aware admission: if the queue's expected service time already
  // exceeds the request's budget, shed now with honest Retry-After instead
  // of burning a worker on a doomed request.
  if (ewma_task_s_ > 0.0 && serve_.workers > 0) {
    const double est_wait_s =
        ewma_task_s_ * static_cast<double>(supervisor_->pending()) /
        static_cast<double>(serve_.workers);
    if (est_wait_s > deadline_s) {
      obs::counter("serve.rejected.deadline").inc();
      respond(conn, 429,
              error_body(id,
                         "deadline unmeetable: estimated queue wait " +
                             std::to_string(est_wait_s) + "s exceeds budget",
                         StatusCode::kDeadlineExceeded),
              "application/json",
              {{"Retry-After", retry_after(est_wait_s - deadline_s)}});
      return;
    }
  }

  // ---- spool + submit ----
  const std::string spool =
      spool_dir_ + "/r" + std::to_string(requests_) + "-" + id + ext;
  {
    std::ofstream out(spool, std::ios::binary | std::ios::trunc);
    out.write(clip_bytes.data(),
              static_cast<std::streamsize>(clip_bytes.size()));
    if (!out.good()) {
      respond(conn, 500,
              error_body(id, "cannot spool request body", StatusCode::kIo));
      return;
    }
  }

  const bool want_mask = req.query_param("mask") == "pgm";
  const bool degraded = breaker_open(now);

  // Mint the request's trace identity at admission (DESIGN.md §16): one
  // trace id for the whole request, one span id for its root. Both travel
  // in the kTask frame header so worker spans nest under the root.
  const std::uint64_t trace_id = obs::next_span_id();
  const std::uint64_t root_span = obs::next_span_id();
  const std::uint64_t admit_ns = obs::monotonic_ns();

  ByteWriter w;
  w.str(id);
  w.str(spool);
  w.pod<double>(now + deadline_s);
  w.pod<std::uint8_t>(want_mask ? 1 : 0);
  w.pod<std::uint8_t>(degraded ? 1 : 0);
  w.pod<std::uint64_t>(admit_ns);

  proc::Task task;
  task.id = id;
  task.payload = w.buffer();
  // SIGKILL backstop just above the cooperative budget: the watchdog inside
  // the worker should win; this catches a worker that stopped checking.
  task.deadline_s = deadline_s + std::max(5.0, 0.25 * deadline_s);
  task.trace_id = trace_id;
  task.parent_span = root_span;

  PendingReq pr;
  pr.conn_fd = conn.fd;
  pr.conn_serial = conn.serial;
  pr.want_mask = want_mask;
  pr.degraded = degraded;
  pr.deadline_s = deadline_s;
  pr.submit_s = now;
  pr.spool_path = spool;
  pr.trace_id = trace_id;
  pr.span_id = root_span;
  pr.admit_ns = admit_ns;
  pending_.emplace(id, std::move(pr));
  conn.awaiting_result = true;
  conn.io_deadline_s = 0.0;  // the worker pipeline owns the deadline now

  if (obs::ledger_enabled()) {
    obs::LedgerRecord rec("request_start");
    rec.field("id", id)
        .field("deadline_s", deadline_s)
        .field("queued", static_cast<std::int64_t>(queued))
        .field("degraded", degraded)
        .field("trace", hex_id(trace_id));
    obs::ledger_emit(rec);
  }
  supervisor_->submit(std::move(task));
}

// ------------------------------------------------------------------ results

void Server::on_result(const proc::TaskResult& tr) {
  const auto it = pending_.find(tr.id);
  if (it == pending_.end()) return;  // already failed out (pool loss, drain)
  const PendingReq pr = std::move(it->second);
  pending_.erase(it);
  ::unlink(pr.spool_path.c_str());
  const double wall_s = net::now_s() - pr.submit_s;

  int http = 500;
  std::string body;
  std::string mask_pgm;
  engine::BatchClipResult res;
  StageSeconds stages;
  bool decoded = false;

  if (tr.cancelled) {
    http = 503;
    body = error_body(tr.id, tr.error, StatusCode::kCancelled);
  } else if (tr.quarantined) {
    http = 502;
    body = error_body(tr.id,
                      tr.error.empty()
                          ? "request crashed " +
                                std::to_string(serve_.quarantine_kills) +
                                " workers and was quarantined"
                          : tr.error,
                      StatusCode::kQuarantined);
  } else if (!tr.error.empty()) {
    http = 500;
    body = error_body(tr.id, tr.error, StatusCode::kInternal);
  } else {
    try {
      ByteReader r(tr.payload.data(), tr.payload.size(), "serve result");
      res = engine::decode_clip_result(r, tr.id, "serve result");
      if (r.pod<std::uint8_t>() != 0) mask_pgm = r.str((64u << 20) + 64);
      stages = decode_stages(r);
      decoded = true;
    } catch (const std::exception& e) {
      http = 500;
      body = error_body(tr.id, std::string("undecodable worker response: ") +
                                   e.what());
    }
  }

  if (decoded) {
    http = http_code_for(res.code);
    consecutive_deaths_ = 0;  // a surviving worker closes the breaker window
    const double sample = res.runtime_s > 0.0 ? res.runtime_s : wall_s;
    ewma_task_s_ = ewma_task_s_ <= 0.0
                       ? sample
                       : kEwmaAlpha * sample + (1.0 - kEwmaAlpha) * ewma_task_s_;
    json::Value obj = json::Value::object();
    obj.set("id", json::Value::string(tr.id));
    obj.set("ok", json::Value::boolean(res.ok()));
    obj.set("code", json::Value::string(status_code_name(res.code)));
    obj.set("stage", json::Value::string(engine::batch_stage_name(res.stage)));
    obj.set("degraded", json::Value::boolean(pr.degraded));
    obj.set("crashes", json::Value::number(tr.crashes));
    obj.set("retries", json::Value::number(res.retries));
    obj.set("fallbacks", json::Value::number(res.fallbacks));
    obj.set("ilt_iterations", json::Value::number(res.ilt_iterations));
    obj.set("l2_px", json::Value::number(res.l2_px));
    obj.set("l2_nm2", json::Value::number(res.l2_nm2));
    obj.set("pvb_nm2", json::Value::number(static_cast<double>(res.pvb_nm2)));
    obj.set("runtime_s", json::Value::number(res.runtime_s));
    obj.set("wall_s", json::Value::number(wall_s));
    obj.set("trace", json::Value::string(hex_id(pr.trace_id)));
    if (!res.ok()) obj.set("error", json::Value::string(res.error));
    body = obj.dump();
  }

  ++completed_;
  obs::counter(http < 400 ? "serve.requests.ok" : "serve.requests.error").inc();
  if (obs::metrics_enabled()) {
    obs::histogram("serve.request_s", obs::time_buckets()).observe(wall_s);
    if (decoded) {
      // The supervisor owns the fleet-visible stage histograms; the worker
      // ships raw seconds and records trace-only spans (no double count).
      obs::histogram("serve.stage.queue_s", obs::time_buckets())
          .observe(stages.queue_s);
      obs::histogram("serve.stage.dispatch_s", obs::time_buckets())
          .observe(stages.dispatch_s);
      obs::histogram("serve.stage.decode_s", obs::time_buckets())
          .observe(stages.decode_s);
      obs::histogram("serve.stage.litho_s", obs::time_buckets())
          .observe(stages.litho_s);
      obs::histogram("serve.stage.ilt_s", obs::time_buckets())
          .observe(stages.ilt_s);
      obs::histogram("serve.stage.encode_s", obs::time_buckets())
          .observe(stages.encode_s);
    }
  }
  // The request root span: admission to delivery, recorded explicitly since
  // it crosses many event-loop iterations. Worker spans parent under it.
  {
    static const obs::SpanSite& request_site = obs::span_site("serve.request");
    obs::record_span(request_site, pr.admit_ns, obs::monotonic_ns(),
                     pr.trace_id, pr.span_id, 0);
  }
  if (obs::ledger_enabled()) {
    obs::LedgerRecord rec("request_end");
    rec.field("id", tr.id)
        .field("http", http)
        .field("code", status_code_name(decoded ? res.code
                                        : tr.cancelled
                                            ? StatusCode::kCancelled
                                        : tr.quarantined
                                            ? StatusCode::kQuarantined
                                            : StatusCode::kInternal))
        .field("stage", decoded ? engine::batch_stage_name(res.stage) : "Failed")
        .field("crashes", tr.crashes)
        .field("degraded", pr.degraded)
        .field("wall_s", wall_s)
        .field("trace", hex_id(pr.trace_id));
    if (decoded) {
      rec.field("queue_s", stages.queue_s)
          .field("dispatch_s", stages.dispatch_s)
          .field("decode_s", stages.decode_s)
          .field("litho_s", stages.litho_s)
          .field("ilt_s", stages.ilt_s)
          .field("encode_s", stages.encode_s);
    }
    obs::ledger_emit(rec);
  }

  std::vector<std::pair<std::string, std::string>> extra;
  extra.emplace_back("X-Ganopc-Trace", hex_id(pr.trace_id));
  if (decoded) {
    extra.emplace_back("X-Ganopc-Stage-Queue-S", format_seconds(stages.queue_s));
    extra.emplace_back("X-Ganopc-Stage-Dispatch-S",
                       format_seconds(stages.dispatch_s));
    extra.emplace_back("X-Ganopc-Stage-Decode-S",
                       format_seconds(stages.decode_s));
    extra.emplace_back("X-Ganopc-Stage-Litho-S", format_seconds(stages.litho_s));
    extra.emplace_back("X-Ganopc-Stage-Ilt-S", format_seconds(stages.ilt_s));
    extra.emplace_back("X-Ganopc-Stage-Encode-S",
                       format_seconds(stages.encode_s));
  }
  if (decoded && pr.want_mask && http == 200 && !mask_pgm.empty()) {
    extra.emplace_back("X-Ganopc-Id", tr.id);
    extra.emplace_back("X-Ganopc-Stage", engine::batch_stage_name(res.stage));
    extra.emplace_back("X-Ganopc-L2-Nm2", std::to_string(res.l2_nm2));
    extra.emplace_back("X-Ganopc-Crashes", std::to_string(tr.crashes));
    deliver(pr, 200, mask_pgm, "image/x-portable-graymap", extra);
  } else {
    deliver(pr, http, body, "application/json", extra);
  }
}

void Server::deliver(
    const PendingReq& pr, int code, const std::string& body,
    std::string_view content_type,
    const std::vector<std::pair<std::string, std::string>>& extra) {
  const auto it = conns_.find(pr.conn_fd);
  if (it == conns_.end() || it->second.serial != pr.conn_serial)
    return;  // the client hung up; the ledger already has the outcome
  Conn& conn = it->second;
  conn.out = http_response(code, body, content_type, extra,
                           conn.close_after_flush);
  conn.out_off = 0;
  conn.awaiting_result = false;
  conn.io_deadline_s = net::now_s() + serve_.write_timeout_s;
  flush_conn(conn);
}

void Server::fail_all_pending(int http_code, const std::string& error) {
  std::vector<std::string> ids;
  ids.reserve(pending_.size());
  for (const auto& [id, pr] : pending_) ids.push_back(id);
  for (const std::string& id : ids) {
    const auto it = pending_.find(id);
    if (it == pending_.end()) continue;
    const PendingReq pr = std::move(it->second);
    pending_.erase(it);
    ::unlink(pr.spool_path.c_str());
    ++completed_;
    obs::counter("serve.requests.error").inc();
    if (obs::ledger_enabled()) {
      obs::LedgerRecord rec("request_end");
      rec.field("id", id)
          .field("http", http_code)
          .field("code", status_code_name(StatusCode::kCancelled))
          .field("stage", "Failed")
          .field("wall_s", net::now_s() - pr.submit_s);
      obs::ledger_emit(rec);
    }
    deliver(pr, http_code, error_body(id, error, StatusCode::kCancelled),
            "application/json", {});
  }
}

// ---------------------------------------------------------- breaker / drain

void Server::observe_deaths() {
  const auto& reports = supervisor_->crash_reports();
  const double now = net::now_s();
  for (; seen_deaths_ < reports.size(); ++seen_deaths_) ++consecutive_deaths_;
  if (!breaker_open(now) && consecutive_deaths_ >= serve_.breaker_kills) {
    breaker_until_s_ = now + serve_.breaker_cooldown_s;
    consecutive_deaths_ = 0;
    obs::counter("serve.breaker.trips").inc();
    if (obs::ledger_enabled()) {
      obs::LedgerRecord rec("breaker_open");
      rec.field("cooldown_s", serve_.breaker_cooldown_s)
          .field("worker_deaths", static_cast<std::int64_t>(reports.size()));
      obs::ledger_emit(rec);
    }
    std::fprintf(stderr,
                 "ganopc serve: circuit breaker open for %.0fs "
                 "(%d consecutive worker deaths) — degraded MB-OPC-only mode\n",
                 serve_.breaker_cooldown_s, serve_.breaker_kills);
  }
}

bool Server::breaker_open(double now) const { return now < breaker_until_s_; }

std::size_t Server::queued_depth() const {
  const std::size_t pending = supervisor_->pending();
  const std::size_t inflight = supervisor_->inflight();
  return pending > inflight ? pending - inflight : 0;
}

void Server::begin_drain() {
  draining_ = true;
  drain_deadline_s_ = net::now_s() + serve_.drain_grace_s;
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!serve_.unix_socket.empty()) ::unlink(serve_.unix_socket.c_str());
  if (obs::ledger_enabled()) {
    obs::LedgerRecord rec("serve_drain");
    rec.field("inflight", static_cast<std::int64_t>(supervisor_->inflight()))
        .field("queued", static_cast<std::int64_t>(queued_depth()));
    obs::ledger_emit(rec);
  }
  std::printf("ganopc serve: drain requested — finishing %zu request(s)\n",
              pending_.size());
  std::fflush(stdout);
}

}  // namespace ganopc::serve
