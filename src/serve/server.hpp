// `ganopc serve` — a fault-tolerant mask-optimization daemon (DESIGN.md §14).
//
// One poll()-driven event loop multiplexes the listening socket, every client
// connection and the supervisor's worker result pipes. Requests (layout text,
// JSON, or raw GDS) are admission-controlled against a bounded queue and the
// request's deadline, spooled to disk, and dispatched to proc::Supervisor
// workers that run the Engine degradation chain in a sandboxed child —
// a SIGSEGV / OOM kill / hang while optimizing one request costs that worker,
// never the daemon, and the requester still gets a typed answer.
//
// Robustness surface, end to end:
//   - admission: bounded queue (503 + Retry-After), deadline feasibility
//     check against an EWMA of recent optimization times (429 + Retry-After)
//   - deadline propagation: the request deadline is stamped as an absolute
//     monotonic instant, so queue wait burns budget; the worker passes the
//     remainder into the ILT watchdog (SubmitOptions::deadline_s) and the
//     supervisor holds a SIGKILL backstop slightly above it
//   - degradation: each worker crash drops one rung (supervisor crash count);
//     a circuit breaker trips to MB-OPC-only mode after `breaker_kills`
//     consecutive worker deaths, and responses report the rung that answered
//   - slow/hostile clients: header/body caps (413/431), read timeout kills a
//     slow-loris (408 when the request had started), write timeout kills a
//     stalled reader; a lost worker pool degrades to typed 503s, not an exit
//   - drain: the stop flag (SIGTERM) closes the listener, finishes in-flight
//     work within drain_grace_s, answers stragglers 503/504, flushes the
//     ledger, exits 0
//
// Endpoints: POST /v1/optimize (JSON {"layout": "..."} | text/plain layout |
// raw GDS with ?format=gds; ?mask=pgm returns the mask as a PGM body),
// GET /healthz, GET /readyz, GET /metrics (Prometheus text).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "proc/supervisor.hpp"
#include "serve/http.hpp"

namespace ganopc::serve {

struct ServeConfig {
  std::string host = "127.0.0.1";
  int port = 0;             ///< TCP listen port (0 = kernel-assigned)
  std::string unix_socket;  ///< when set, listen here instead of TCP
  std::string port_file;    ///< write the bound TCP port here (test sync)
  int max_conns = 64;
  /// Requests admitted but not yet dispatched to a worker; one past this
  /// sheds with 503 + Retry-After.
  int max_queue = 8;
  double default_deadline_s = 60.0;  ///< when the request names none
  double max_deadline_s = 600.0;     ///< requested deadlines clamp to this
  double read_timeout_s = 10.0;      ///< full request must arrive within this
  double write_timeout_s = 10.0;     ///< response must drain within this
  std::size_t max_body_bytes = 64u << 20;  ///< proc::wire parity
  int breaker_kills = 3;             ///< consecutive deaths that trip the breaker
  double breaker_cooldown_s = 30.0;  ///< degraded-only window after a trip
  double drain_grace_s = 30.0;       ///< SIGTERM: budget for in-flight work
  std::string spool_dir;  ///< request spool ("" = /tmp/ganopc-serve-<pid>)

  // Worker pool (mirrors `ganopc batch` supervised mode).
  int workers = 1;
  int quarantine_kills = 3;
  double heartbeat_timeout_s = 30.0;
  int worker_mem_mb = 0;
  int worker_cpu_s = 0;
  std::uint64_t seed = 1847;

  /// SIGTERM/SIGINT drain flag (the CLI's signal handler owns it).
  const std::atomic<bool>* stop = nullptr;
};

class Server {
 public:
  /// `engine` is the shared mask-optimization session (litho backend,
  /// generator, SubmitPolicy acceptance gate / retry pacing); it must outlive
  /// the server. Its per-clip deadline is ignored — every request carries its
  /// own budget into Engine::submit. Process-level policy (workers, journal,
  /// drain) is the daemon's, not the engine's.
  Server(const engine::Engine& engine, ServeConfig serve);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, serve until the stop flag drains the daemon, and return the
  /// process exit code (0 = clean drain). Throws StatusError only for
  /// startup faults (bad address, unwritable spool dir).
  int run();

  /// Requests fully answered (including typed errors) — exposed for the
  /// final report and tests.
  std::int64_t completed() const { return completed_; }

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t serial = 0;   ///< guards against fd reuse across requests
    HttpRequestParser parser;
    std::string out;            ///< pending response bytes
    std::size_t out_off = 0;
    double io_deadline_s = 0.0; ///< read or write deadline (0 = none)
    bool close_after_flush = false;
    bool awaiting_result = false;  ///< an optimize request is in the pool
    bool slow_trickle = false;     ///< serve.slow_client failpoint
  };

  struct PendingReq {
    int conn_fd = -1;
    std::uint64_t conn_serial = 0;
    bool want_mask = false;
    bool degraded = false;     ///< breaker was open at admission
    double deadline_s = 0.0;   ///< granted budget (already clamped)
    double submit_s = 0.0;
    std::string spool_path;
    std::uint64_t trace_id = 0;  ///< minted at admission (DESIGN.md §16)
    std::uint64_t span_id = 0;   ///< the request root span
    std::uint64_t admit_ns = 0;  ///< obs::monotonic_ns() at admission
  };

  void setup_listener();
  void setup_spool();
  proc::SupervisorConfig supervisor_config();
  std::string worker_entry(const std::string& payload, int crashes) const;

  void accept_clients();
  void read_conn(Conn& conn);
  void flush_conn(Conn& conn);
  void sweep_timeouts(double now);
  void close_conn(int fd);

  void handle_request(Conn& conn, const HttpRequest& req);
  void handle_optimize(Conn& conn, const HttpRequest& req);
  void respond(Conn& conn, int code, const std::string& body,
               std::string_view content_type = "application/json",
               const std::vector<std::pair<std::string, std::string>>& extra = {});
  void on_result(const proc::TaskResult& result);
  void deliver(const PendingReq& req, int code, const std::string& body,
               std::string_view content_type,
               const std::vector<std::pair<std::string, std::string>>& extra);
  void observe_deaths();
  void begin_drain();
  void fail_all_pending(int http_code, const std::string& error);

  bool breaker_open(double now) const;
  std::size_t queued_depth() const;

  const engine::Engine& engine_;
  ServeConfig serve_;
  bool has_generator_ = false;
  std::unique_ptr<proc::Supervisor> supervisor_;

  int listen_fd_ = -1;
  std::string spool_dir_;
  std::map<int, Conn> conns_;
  std::map<std::string, PendingReq> pending_;
  std::uint64_t next_serial_ = 1;

  bool draining_ = false;
  double drain_deadline_s_ = 0.0;
  bool pool_dead_ = false;
  int consecutive_deaths_ = 0;
  std::size_t seen_deaths_ = 0;
  double breaker_until_s_ = 0.0;
  double ewma_task_s_ = 0.0;
  std::int64_t completed_ = 0;
  std::int64_t requests_ = 0;
};

}  // namespace ganopc::serve
