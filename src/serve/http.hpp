// Incremental HTTP/1.1 request parser + response serializer (DESIGN.md §14).
//
// The daemon reads sockets non-blocking, so requests arrive in arbitrary
// fragments; HttpRequestParser is a push parser in the style of
// proc::FrameBuffer — feed() bytes as they land, get NeedMore / Complete /
// Error back. It enforces the wire discipline up front (header-bytes cap,
// Content-Length body cap mirroring proc::wire's 64 MB frame ceiling) and
// classifies malformed input into the HTTP status the daemon should answer
// with (400 malformed, 413 too large, 501 chunked-unsupported), so a
// garbage or hostile client costs one typed response, never a crash.
//
// Scope: exactly what the daemon needs. Request line + headers + fixed
// Content-Length bodies; both CRLF and bare-LF line endings are accepted
// (curl sends CRLF, tests often write LF). No chunked encoding, no
// multipart, no HTTP/2.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ganopc::serve {

struct HttpLimits {
  std::size_t max_header_bytes = 16u << 10;
  /// Cap on Content-Length; mirrors proc::kMaxFramePayload so a request body
  /// that would not fit a worker frame is rejected at the door with 413.
  std::size_t max_body_bytes = 64u << 20;
};

struct HttpRequest {
  std::string method;   ///< e.g. "POST" (upper-case as sent)
  std::string target;   ///< raw request target, e.g. "/v1/optimize?mask=pgm"
  std::string version;  ///< "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;  ///< order kept
  std::string body;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* header(std::string_view name) const;
  /// `target` up to the first '?'.
  std::string path() const;
  /// Value of `key` in the query string ("" when absent; no %-decoding —
  /// the daemon's parameters are all token-valued).
  std::string query_param(std::string_view key) const;
  /// Connection: close requested (HTTP/1.1 defaults to keep-alive).
  bool wants_close() const;
};

enum class ParseState { NeedMore, Complete, Error };

class HttpRequestParser {
 public:
  explicit HttpRequestParser(const HttpLimits& limits = {});

  /// Consume `n` bytes. Once Complete or Error is returned the parser stops
  /// consuming until reset(). On Error, error_code()/error_reason() carry the
  /// HTTP status + detail the server should answer with.
  ParseState feed(const char* data, std::size_t n);

  ParseState state() const { return state_; }
  const HttpRequest& request() const { return req_; }
  int error_code() const { return error_code_; }
  const std::string& error_reason() const { return error_reason_; }

  /// True once any byte of the current request has been consumed — a timed
  /// out connection with progress is a slow-loris, without is just idle.
  bool started() const { return started_; }

  /// Ready the parser for the next request on a keep-alive connection.
  void reset();

 private:
  ParseState fail(int code, std::string reason);
  bool parse_head(std::string_view head);

  HttpLimits limits_;
  std::string buf_;           ///< accumulated head bytes until blank line
  bool head_done_ = false;
  bool started_ = false;
  std::size_t body_expected_ = 0;
  ParseState state_ = ParseState::NeedMore;
  HttpRequest req_;
  int error_code_ = 0;
  std::string error_reason_;
};

/// Serialize a complete response. Content-Length and Connection are always
/// emitted (plus `extra` headers, e.g. Retry-After); body may be binary.
std::string http_response(
    int code, std::string_view body,
    std::string_view content_type = "application/json",
    const std::vector<std::pair<std::string, std::string>>& extra = {},
    bool close_connection = false);

/// Canonical reason phrase ("OK", "Too Many Requests", ...).
const char* http_status_reason(int code);

}  // namespace ganopc::serve
