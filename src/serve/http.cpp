#include "serve/http.hpp"

#include <algorithm>
#include <cctype>

namespace ganopc::serve {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

}  // namespace

const std::string* HttpRequest::header(std::string_view name) const {
  for (const auto& [k, v] : headers)
    if (iequals(k, name)) return &v;
  return nullptr;
}

std::string HttpRequest::path() const {
  const std::size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

std::string HttpRequest::query_param(std::string_view key) const {
  const std::size_t q = target.find('?');
  if (q == std::string::npos) return "";
  std::string_view qs = std::string_view(target).substr(q + 1);
  while (!qs.empty()) {
    const std::size_t amp = qs.find('&');
    const std::string_view pair = qs.substr(0, amp);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key)
      return std::string(pair.substr(eq + 1));
    if (eq == std::string_view::npos && pair == key) return "";
    if (amp == std::string_view::npos) break;
    qs.remove_prefix(amp + 1);
  }
  return "";
}

bool HttpRequest::wants_close() const {
  const std::string* c = header("Connection");
  return c != nullptr && iequals(trim(*c), "close");
}

HttpRequestParser::HttpRequestParser(const HttpLimits& limits)
    : limits_(limits) {}

ParseState HttpRequestParser::fail(int code, std::string reason) {
  state_ = ParseState::Error;
  error_code_ = code;
  error_reason_ = std::move(reason);
  return state_;
}

void HttpRequestParser::reset() {
  buf_.clear();
  head_done_ = false;
  started_ = false;
  body_expected_ = 0;
  state_ = ParseState::NeedMore;
  req_ = HttpRequest{};
  error_code_ = 0;
  error_reason_.clear();
}

bool HttpRequestParser::parse_head(std::string_view head) {
  std::size_t pos = 0;
  bool first = true;
  while (pos < head.size()) {
    std::size_t eol = head.find('\n', pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    pos = eol + 1;
    if (first) {
      first = false;
      const std::size_t sp1 = line.find(' ');
      const std::size_t sp2 = line.rfind(' ');
      if (sp1 == std::string_view::npos || sp2 == sp1) {
        fail(400, "malformed request line");
        return false;
      }
      req_.method = std::string(line.substr(0, sp1));
      req_.target = std::string(trim(line.substr(sp1 + 1, sp2 - sp1 - 1)));
      req_.version = std::string(line.substr(sp2 + 1));
      if (req_.method.empty() ||
          !std::all_of(req_.method.begin(), req_.method.end(), [](char c) {
            return std::isupper(static_cast<unsigned char>(c)) != 0;
          })) {
        fail(400, "malformed method");
        return false;
      }
      if (req_.target.empty() || req_.target[0] != '/') {
        fail(400, "malformed request target");
        return false;
      }
      if (req_.version != "HTTP/1.1" && req_.version != "HTTP/1.0") {
        fail(400, "unsupported HTTP version");
        return false;
      }
      continue;
    }
    if (line.empty()) continue;  // tolerated stray blank (should not occur)
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      fail(400, "malformed header line");
      return false;
    }
    req_.headers.emplace_back(std::string(trim(line.substr(0, colon))),
                              std::string(trim(line.substr(colon + 1))));
  }

  if (req_.header("Transfer-Encoding") != nullptr) {
    fail(501, "Transfer-Encoding is not supported; send Content-Length");
    return false;
  }
  if (const std::string* cl = req_.header("Content-Length")) {
    if (cl->empty() || !std::all_of(cl->begin(), cl->end(), [](char c) {
          return std::isdigit(static_cast<unsigned char>(c)) != 0;
        }) ||
        cl->size() > 12) {
      fail(400, "malformed Content-Length");
      return false;
    }
    const unsigned long long n = std::stoull(*cl);
    if (n > limits_.max_body_bytes) {
      fail(413, "body exceeds " + std::to_string(limits_.max_body_bytes) +
                    " bytes");
      return false;
    }
    body_expected_ = static_cast<std::size_t>(n);
  }
  return true;
}

ParseState HttpRequestParser::feed(const char* data, std::size_t n) {
  if (state_ != ParseState::NeedMore) return state_;
  if (n > 0) started_ = true;
  std::size_t off = 0;

  if (!head_done_) {
    buf_.append(data, n);
    // The head ends at the first blank line: CRLFCRLF or bare LFLF.
    std::size_t head_end = std::string::npos;
    std::size_t body_off = 0;
    const std::size_t crlf = buf_.find("\r\n\r\n");
    const std::size_t lflf = buf_.find("\n\n");
    if (crlf != std::string::npos && (lflf == std::string::npos || crlf <= lflf)) {
      head_end = crlf;
      body_off = crlf + 4;
    } else if (lflf != std::string::npos) {
      head_end = lflf;
      body_off = lflf + 2;
    }
    if (head_end == std::string::npos) {
      if (buf_.size() > limits_.max_header_bytes)
        return fail(431, "request head exceeds " +
                             std::to_string(limits_.max_header_bytes) + " bytes");
      return state_;
    }
    if (head_end > limits_.max_header_bytes)
      return fail(431, "request head exceeds " +
                           std::to_string(limits_.max_header_bytes) + " bytes");
    if (!parse_head(std::string_view(buf_).substr(0, head_end))) return state_;
    head_done_ = true;
    req_.body.reserve(std::min(body_expected_, std::size_t{1} << 20));
    req_.body.assign(buf_, body_off, std::string::npos);
    buf_.clear();
    data = nullptr;
    off = n = 0;  // everything already moved through buf_
  }

  if (n > off) req_.body.append(data + off, n - off);
  if (req_.body.size() > body_expected_)
    return fail(400, "body longer than Content-Length");
  if (req_.body.size() == body_expected_) state_ = ParseState::Complete;
  return state_;
}

const char* http_status_reason(int code) {
  switch (code) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string http_response(
    int code, std::string_view body, std::string_view content_type,
    const std::vector<std::pair<std::string, std::string>>& extra,
    bool close_connection) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " +
                    http_status_reason(code) + "\r\n";
  out += "Content-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size()) + "\r\n";
  out += close_connection ? "Connection: close\r\n" : "Connection: keep-alive\r\n";
  for (const auto& [k, v] : extra) out += k + ": " + v + "\r\n";
  out += "\r\n";
  out.append(body);
  return out;
}

}  // namespace ganopc::serve
