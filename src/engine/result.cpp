#include "engine/result.hpp"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/failpoint.hpp"
#include "common/sectioned_file.hpp"

namespace ganopc::engine {

const char* batch_stage_name(BatchStage stage) {
  switch (stage) {
    case BatchStage::GanIlt: return "gan+ilt";
    case BatchStage::Ilt: return "ilt";
    case BatchStage::MbOpc: return "mbopc";
    case BatchStage::Failed: return "failed";
  }
  return "?";
}

// One codec for a manifest row's non-id fields, shared by the journal
// sections, the supervised-mode wire payloads, and the serve daemon's worker
// responses so all three stay field-for-field identical by construction.
void encode_clip_result(ByteWriter& w, const BatchClipResult& res) {
  w.str(res.source);
  w.pod(static_cast<std::uint32_t>(res.code));
  w.str(res.error);
  w.pod(static_cast<std::uint32_t>(res.stage));
  w.pod(static_cast<std::uint8_t>(res.has_termination ? 1 : 0));
  w.pod(static_cast<std::uint32_t>(res.termination));
  w.pod(static_cast<std::int32_t>(res.retries));
  w.pod(static_cast<std::int32_t>(res.fallbacks));
  w.pod(static_cast<std::int32_t>(res.ilt_iterations));
  w.pod(res.l2_px);
  w.pod(res.l2_nm2);
  w.pod(res.pvb_nm2);
  w.pod(res.runtime_s);
}

BatchClipResult decode_clip_result(ByteReader& r, const std::string& id,
                                   const std::string& context) {
  BatchClipResult res;
  res.id = id;
  res.source = r.str();
  const auto code = r.pod<std::uint32_t>();
  res.error = r.str(1 << 16);
  const auto stage = r.pod<std::uint32_t>();
  res.has_termination = r.pod<std::uint8_t>() != 0;
  const auto termination = r.pod<std::uint32_t>();
  res.retries = r.pod<std::int32_t>();
  res.fallbacks = r.pod<std::int32_t>();
  res.ilt_iterations = r.pod<std::int32_t>();
  res.l2_px = r.pod<double>();
  res.l2_nm2 = r.pod<double>();
  res.pvb_nm2 = r.pod<std::int64_t>();
  res.runtime_s = r.pod<double>();
  // No expect_exhausted() here: the serve daemon appends response fields
  // (mask bytes) after the row; strict callers check exhaustion themselves.
  GANOPC_TYPED_CHECK(
      StatusCode::kInvalidInput,
      code <= static_cast<std::uint32_t>(StatusCode::kQuarantined) &&
          stage <= static_cast<std::uint32_t>(BatchStage::Failed) &&
          termination <= static_cast<std::uint32_t>(
                             ilt::TerminationReason::kDeadlineExceeded),
      "batch: out-of-range enum in " << context);
  res.code = static_cast<StatusCode>(code);
  res.stage = static_cast<BatchStage>(stage);
  res.termination = static_cast<ilt::TerminationReason>(termination);
  return res;
}

// Kill-matrix fault injection for the supervised-mode tests, armed by the
// `proc.clip_fault` failpoint (off => zero cost, tests only). Faults are
// selected by clip-id suffix so a test can poison clip k of N without caring
// which worker draws it; a trailing digit bounds the crash count so
// restart-then-succeed and quarantine-after-K are both expressible:
//   <id>_segv  / _kill / _oom / _hang   -> faults on every delivery
//   <id>_segv2 (etc.)                   -> faults until `crashes` reaches 2
// Failpoint counters are per-process, so a restarted worker would re-arm
// them identically — the supervisor-tracked crash count is the only state
// that survives a worker death, hence it gates the bounded variants.
void maybe_inject_clip_fault(const std::string& id, int crashes) {
  if (!GANOPC_FAILPOINT("proc.clip_fault")) return;
  std::string marker = id;
  int bound = -1;  // -1 = unbounded: fault on every delivery
  if (!marker.empty() && marker.back() >= '0' && marker.back() <= '9') {
    bound = marker.back() - '0';
    marker.pop_back();
  }
  if (bound >= 0 && crashes >= bound) return;  // crashed enough; succeed now
  if (marker.ends_with("_segv")) {
    std::raise(SIGSEGV);  // sanitizers report + exit(1); either way it dies
    std::abort();
  }
  if (marker.ends_with("_kill")) {
    std::raise(SIGKILL);  // uncatchable, like the kernel OOM killer
    std::abort();
  }
  if (marker.ends_with("_oom")) {
    // Grow until the worker's RLIMIT_DATA refuses the allocation, touching
    // every page so the growth is real; then die the way the OOM killer
    // would. Bounded at 2 GiB so a missing rlimit cannot take the host down.
    constexpr std::size_t kChunk = 64u << 20;
    for (std::size_t total = 0; total < (2048u << 20); total += kChunk) {
      char* p = static_cast<char*>(std::malloc(kChunk));
      if (p == nullptr) break;
      std::memset(p, 0x5A, kChunk);
    }
    std::raise(SIGKILL);
    std::abort();
  }
  if (marker.ends_with("_hang")) {
    // Wedged computation: heartbeats keep ticking (the beat thread is alive)
    // but the task never returns — only the task deadline can catch this.
    for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

}  // namespace ganopc::engine
