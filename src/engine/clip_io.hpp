// Clip and mask I/O helpers shared by every engine front-end.
//
// Before the engine extraction, layout loading and mask PGM handling were
// copied between tools/cli.cpp, the batch runner and the serve worker path,
// and the copies had drifted: the CLI honored --cell/--layer when clipping a
// GDS library while the batch loader silently ignored both. One loader (and
// one mask codec) here keeps the front-ends byte-for-byte interchangeable —
// the bit-identity contract test in test_engine.cpp depends on it.
#pragma once

#include <cstdint>
#include <string>

#include "geometry/grid.hpp"
#include "geometry/layout.hpp"

namespace ganopc::engine {

/// Load a clip layout from text, GDSII (.gds) or contest GLP (.glp), picked
/// by extension. `clip_nm` sets the square clip window for the binary
/// formats; `cell`/`layer` select a GDS structure ("" = sole/top structure).
geom::Layout load_layout_file(const std::string& path, std::int32_t clip_nm,
                              const std::string& cell = "",
                              std::int16_t layer = 1);

/// Mask -> 8-bit binary PGM bytes (the serve response / CLI artifact format).
std::string encode_mask_pgm(const geom::Grid& mask);

/// Write `encode_mask_pgm` output to a file.
void write_mask_pgm(const std::string& path, const geom::Grid& mask);

/// Load a mask PGM at the given simulation geometry; pixels >= 128 become
/// 1.0f. Throws on a geometry mismatch.
geom::Grid load_mask_pgm(const std::string& path, std::int32_t grid_size,
                         std::int32_t pixel_nm);

}  // namespace ganopc::engine
