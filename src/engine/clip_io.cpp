#include "engine/clip_io.hpp"

#include "common/error.hpp"
#include "common/image_io.hpp"
#include "gds/gds.hpp"
#include "layout/glp.hpp"

namespace ganopc::engine {

geom::Layout load_layout_file(const std::string& path, std::int32_t clip_nm,
                              const std::string& cell, std::int16_t layer) {
  const geom::Rect clip{0, 0, clip_nm, clip_nm};
  if (path.ends_with(".gds"))
    return gds::gds_to_layout(gds::read_gds(path), clip, cell, layer);
  if (path.ends_with(".glp")) return layout::read_glp(path, clip);
  return geom::Layout::load(path);
}

std::string encode_mask_pgm(const geom::Grid& mask) {
  return encode_pgm(to_gray(mask.data.data(), mask.cols, mask.rows));
}

void write_mask_pgm(const std::string& path, const geom::Grid& mask) {
  write_pgm(path, to_gray(mask.data.data(), mask.cols, mask.rows));
}

geom::Grid load_mask_pgm(const std::string& path, std::int32_t grid_size,
                         std::int32_t pixel_nm) {
  const GrayImage img = read_pgm(path);
  GANOPC_CHECK_MSG(img.width == grid_size && img.height == grid_size,
                   "mask PGM " << path << " must be " << grid_size << "x"
                               << grid_size << " (got " << img.width << "x"
                               << img.height << ")");
  geom::Grid mask(img.height, img.width, pixel_nm);
  for (std::size_t i = 0; i < mask.data.size(); ++i)
    mask.data[i] = img.pixels[i] >= 128 ? 1.0f : 0.0f;
  return mask;
}

}  // namespace ganopc::engine
