// ganopc::engine::Engine — the embeddable mask-optimization session
// (DESIGN.md §15).
//
// An Engine is one long-lived session that owns everything a mask
// optimization needs: the validated GanOpcConfig, the lithography simulator
// (built once through a pluggable litho backend — Abbe reference kernels or
// truncated-TCC eigen-kernels), the optional generator weights, and a
// persistent litho workspace whose buffers stay warm across submissions.
// `submit(clip, options) -> MaskResult` is the single entry point; the CLI's
// one-shot `ganopc optimize`, the batch runner, and the serve daemon's
// sandboxed workers all call it, so a clip produces bit-identical results no
// matter which front-end carried it in (the tier-1 contract test pins this).
//
// Each submission walks the graceful degradation chain
//
//   GAN+ILT (when a generator is attached)
//     -> ILT from scratch (the conventional [7] flow)
//       -> MB-OPC (gradient-free, immune to litho numeric faults)
//         -> reported failure with diagnostics
//
// with bounded perturbed-restart retries at each gradient-based rung (paced
// by exponential backoff with deterministic jitter) and a per-clip wall-clock
// deadline threaded into the ILT watchdog. Faults never escape submit(): a
// corrupt clip file, a numeric fault, a blown deadline each land as a typed
// Status on the returned row.
//
// An Engine is NOT thread-safe: submissions share the session workspace, so
// callers serialize submit() (batch mode runs clips sequentially per process;
// supervised/serve workers are separate forked processes, each with its own
// copy of the session).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.hpp"
#include "common/timer.hpp"
#include "core/config.hpp"
#include "core/generator.hpp"
#include "engine/result.hpp"
#include "geometry/layout.hpp"
#include "litho/backend.hpp"
#include "litho/lithosim.hpp"
#include "litho/workspace.hpp"

namespace ganopc::engine {

/// Per-submission policy: retries, fallback, acceptance gate, pacing. Owned
/// by the session (it shapes every submission identically, which is what
/// makes journal replay and the bit-identity contract possible); the batch
/// journal records these fields in its meta section.
struct SubmitPolicy {
  double clip_deadline_s = 0.0;    ///< wall-clock budget per clip (0 = none)
  int max_retries = 1;             ///< perturbed restarts per gradient rung
  bool allow_fallback = true;      ///< walk the chain past the first rung
  /// Accept a mask when its L2 <= factor * L2(uncorrected print of target).
  /// 0 accepts any finite L2.
  float l2_accept_factor = 1.0f;
  float perturb_amplitude = 0.08f; ///< uniform noise added on retry restarts
  std::uint64_t seed = 1847;       ///< perturbation stream seed

  /// Base/cap for the retry backoff sleep before each perturbed restart
  /// (deterministic jitter keyed on seed + clip id; see common/backoff).
  double retry_backoff_base_s = 0.025;
  double retry_backoff_cap_s = 1.0;
};

/// Everything needed to open a session. `config` is validated on
/// construction; the litho simulator is built through `backend`
/// (parse_litho_backend understands the --litho-backend spelling). A
/// generator is attached either by loading `generator_path` into
/// session-owned weights or by pointing `generator` at caller-owned weights
/// (the non-null pointer wins; both empty/null = no GAN rung).
struct EngineOptions {
  core::GanOpcConfig config;
  litho::ResistConfig resist;
  litho::LithoBackendSpec backend;
  std::string generator_path;
  core::Generator* generator = nullptr;
  SubmitPolicy policy;
};

/// Per-submission knobs beyond the session policy.
struct SubmitOptions {
  /// Overrides SubmitPolicy::clip_deadline_s when >= 0 (0 = no deadline); a
  /// serve request's remaining budget lands here and flows into the ILT
  /// watchdog unchanged.
  double deadline_s = -1.0;
  /// Drops this many rungs off the front of the degradation chain (counted
  /// as fallbacks) — supervised mode passes the clip's crash count so a clip
  /// that killed a worker retries one rung more conservatively.
  int start_rung = 0;
  /// Also return the accepted mask pixels (empty on failure). Batch mode
  /// leaves this off — only metrics reach the manifest.
  bool want_mask = false;
  /// Request trace context (DESIGN.md §16): when trace_id != 0, submit()
  /// installs it thread-locally so its batch.*/litho.*/ilt.* spans nest
  /// under `parent_span` — the serve worker threads the context it received
  /// over the proc wire through here, the CLI mints a fresh root.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
};

/// What a submission returns: the manifest row plus (on request) the mask.
struct MaskResult {
  BatchClipResult row;
  geom::Grid mask;  ///< filled when SubmitOptions::want_mask and row.ok()
};

class Engine {
 public:
  /// Opens the session: validates the config, builds the litho kernels
  /// through the backend, loads/attaches the generator. Throws a typed
  /// StatusError on an invalid config/policy, an unreadable generator file,
  /// or a TCC backend that cannot meet its captured-energy floor.
  explicit Engine(EngineOptions options);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Optimize one clip through the degradation chain. Never throws for
  /// per-clip faults — the row's code/error carry the diagnosis. Not
  /// thread-safe (see file comment).
  MaskResult submit(const BatchClip& clip, const SubmitOptions& opts = {}) const;

  const core::GanOpcConfig& config() const { return config_; }
  const SubmitPolicy& policy() const { return policy_; }
  const litho::LithoSim& sim() const { return sim_; }
  core::Generator* generator() const { return generator_; }
  /// Stable backend display name ("abbe", "tcc", "tcc:<k>").
  const std::string& backend_name() const { return backend_name_; }

 private:
  static litho::LithoSim build_sim(const EngineOptions& options);

  void optimize_clip(const geom::Layout& clip, double deadline_s,
                     BatchClipResult& res, const WallTimer& timer,
                     int start_rung, geom::Grid* mask_out) const;
  bool attempt_ilt(BatchStage stage, const geom::Grid& target, double accept_l2,
                   double remaining_s, int attempt, BatchClipResult& res,
                   Status& last, geom::Grid* mask_out) const;
  bool attempt_mbopc(const geom::Layout& clip, double accept_l2,
                     BatchClipResult& res, Status& last,
                     geom::Grid* mask_out) const;
  void accept(BatchStage stage, const geom::Grid& mask, double l2_px,
              BatchClipResult& res, geom::Grid* mask_out) const;
  geom::Grid gan_initial_mask(const geom::Grid& target) const;
  void perturb(geom::Grid& mask, const std::string& id, int attempt) const;

  core::GanOpcConfig config_;
  SubmitPolicy policy_;
  std::string backend_name_;
  litho::LithoSim sim_;
  std::unique_ptr<core::Generator> owned_generator_;
  core::Generator* generator_ = nullptr;
  /// Session-persistent ILT scratch: buffers grow to the session geometry on
  /// the first submit and are reused verbatim afterwards — the engine
  /// contract test asserts `litho.workspace.grows` stays flat in steady
  /// state. Mutable because the workspace is scratch, not observable state.
  mutable litho::LithoWorkspace ilt_workspace_;
};

}  // namespace ganopc::engine
