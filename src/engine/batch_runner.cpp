#include "engine/batch_runner.hpp"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>

#include "common/csv.hpp"
#include "common/failpoint.hpp"
#include "common/sectioned_file.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "proc/supervisor.hpp"

namespace ganopc::engine {

namespace {

constexpr char kJournalMagic[] = "GOPCBAT1";
// v2: meta carries quarantine_kills; rows may carry StatusCode::kQuarantined.
// `workers` is deliberately *not* journaled — a supervised run may be resumed
// sequentially or with a different worker count and replay identically.
constexpr std::uint32_t kJournalVersion = 2;

bool file_exists(const std::string& path) {
  return std::ifstream(path, std::ios::binary).good();
}

// "clips/wire_03.gds" -> "wire_03"
std::string file_stem(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos && dot > 0) name.resize(dot);
  return name;
}

std::string format_g(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

// Per-row metrics incremented as manifest rows are finalized, so the
// exported counters always agree with the written CSV (including rows
// replayed from the journal on resume).
void count_manifest_row(const BatchClipResult& res) {
  obs::counter(res.ok() ? "batch.clips.ok" : "batch.clips.failed").inc();
  obs::counter(std::string("batch.stage.") + batch_stage_name(res.stage)).inc();
  if (res.retries > 0)
    obs::counter("batch.retries").inc(static_cast<std::uint64_t>(res.retries));
  if (res.fallbacks > 0)
    obs::counter("batch.fallbacks").inc(static_cast<std::uint64_t>(res.fallbacks));
  if (res.from_journal) obs::counter("batch.clips.resumed").inc();
  if (res.code == StatusCode::kQuarantined)
    obs::counter("batch.clips.quarantined").inc();
  if (res.code == StatusCode::kCancelled)
    obs::counter("batch.clips.cancelled").inc();
}

}  // namespace

BatchRunner::BatchRunner(const Engine& engine, BatchConfig batch)
    : engine_(engine), batch_(std::move(batch)) {
  GANOPC_TYPED_CHECK(StatusCode::kInvalidInput,
                     !batch_.resume || !batch_.journal_path.empty(),
                     "batch: resume requires a journal path");
  GANOPC_TYPED_CHECK(StatusCode::kInvalidInput,
                     batch_.workers >= 0 && batch_.quarantine_kills >= 1 &&
                         batch_.task_deadline_s >= 0.0 &&
                         batch_.worker_mem_mb >= 0 && batch_.worker_cpu_s >= 0,
                     "batch: workers/quarantine/limits must be >= 0 "
                     "(quarantine_kills >= 1)");
}

BatchClipResult BatchRunner::process_clip(const BatchClip& clip,
                                          int start_rung) const {
  SubmitOptions opts;
  opts.start_rung = start_rung;
  BatchClipResult res = engine_.submit(clip, opts).row;
  if (batch_.deterministic_manifest) res.runtime_s = 0.0;
  return res;
}

BatchSummary BatchRunner::run_files(const std::vector<std::string>& paths) const {
  std::vector<BatchClip> clips;
  clips.reserve(paths.size());
  std::set<std::string> seen;
  for (const auto& path : paths) {
    std::string id = file_stem(path);
    const std::string base = id;
    for (int n = 2; !seen.insert(id).second; ++n) id = base + "#" + std::to_string(n);
    clips.push_back({id, path, std::nullopt});
  }
  return run(clips);
}

BatchSummary BatchRunner::run(const std::vector<BatchClip>& clips) const {
  GANOPC_TYPED_CHECK(StatusCode::kInvalidInput, !clips.empty(),
                     "batch: no clips to process");
  {
    std::set<std::string> ids;
    for (const auto& clip : clips)
      GANOPC_TYPED_CHECK(StatusCode::kInvalidInput, ids.insert(clip.id).second,
                         "batch: duplicate clip id '" << clip.id << "'");
  }

  std::map<std::string, BatchClipResult> prior;
  if (batch_.resume && file_exists(batch_.journal_path))
    for (auto& res : load_journal(clips)) {
      const std::string id = res.id;
      prior.emplace(id, std::move(res));
    }

  SectionedFileWriter journal{std::string(kJournalMagic)};
  const bool journaling = !batch_.journal_path.empty();
  if (journaling) write_meta(journal, clips);

  if (batch_.workers > 0) return run_supervised(clips, prior, journal, journaling);

  BatchSummary summary;
  summary.clips.reserve(clips.size());
  for (const auto& clip : clips) {
    BatchClipResult res;
    const auto it = prior.find(clip.id);
    if (it != prior.end()) {
      res = it->second;
      res.from_journal = true;
      ++summary.resumed;
    } else if (batch_.stop != nullptr &&
               batch_.stop->load(std::memory_order_relaxed)) {
      // Graceful drain: the remainder becomes kCancelled rows that are NOT
      // journaled, so a --resume run recomputes exactly the drained clips.
      summary.drained = true;
      res.id = clip.id;
      res.source = clip.path.empty() ? "<memory>" : clip.path;
      res.code = StatusCode::kCancelled;
      res.error = "cancelled: batch drain requested before this clip started";
      res.stage = BatchStage::Failed;
      ++summary.failed;
      ++summary.cancelled;
      if (obs::metrics_enabled()) count_manifest_row(res);
      summary.clips.push_back(std::move(res));
      continue;
    } else {
      res = process_clip(clip, /*start_rung=*/0);
    }
    ++(res.ok() ? summary.succeeded : summary.failed);
    if (res.code == StatusCode::kQuarantined) ++summary.quarantined;
    if (obs::metrics_enabled()) count_manifest_row(res);
    if (journaling) {
      encode_clip_result(journal.section("clip/" + clip.id), res);
      journal.write(batch_.journal_path);
      // Crash simulation for the kill-and-resume robustness test: dies right
      // after a journal commit, exactly where a real power cut would land.
      if (GANOPC_FAILPOINT("batch.kill")) {
#ifdef SIGKILL
        std::raise(SIGKILL);
#endif
        std::abort();
      }
    }
    summary.clips.push_back(std::move(res));
  }
  return summary;
}

BatchSummary BatchRunner::run_supervised(
    const std::vector<BatchClip>& clips,
    const std::map<std::string, BatchClipResult>& prior,
    SectionedFileWriter& journal, bool journaling) const {
  std::vector<BatchClipResult> rows(clips.size());
  std::vector<char> have(clips.size(), 0);
  std::map<std::string, std::size_t> index_of;
  for (std::size_t i = 0; i < clips.size(); ++i) index_of.emplace(clips[i].id, i);

  BatchSummary summary;
  auto journal_row = [&](const std::string& id, const BatchClipResult& res) {
    if (!journaling) return;
    encode_clip_result(journal.section("clip/" + id), res);
    journal.write(batch_.journal_path);
    // Same post-commit crash point as the sequential path: the supervised
    // kill-and-resume test SIGKILLs the *dispatcher* here, mid-fan-out.
    if (GANOPC_FAILPOINT("batch.kill")) {
#ifdef SIGKILL
      std::raise(SIGKILL);
#endif
      std::abort();
    }
  };

  // Replay journaled rows first, then fan the remainder out to the workers.
  // The payload is just the clip index: workers are fork() twins of this
  // process and share the clip list (and the Engine session) by inheritance.
  std::vector<proc::Task> tasks;
  for (std::size_t i = 0; i < clips.size(); ++i) {
    const auto it = prior.find(clips[i].id);
    if (it != prior.end()) {
      rows[i] = it->second;
      rows[i].from_journal = true;
      have[i] = 1;
      ++summary.resumed;
      journal_row(clips[i].id, rows[i]);
    } else {
      proc::Task task;
      task.id = clips[i].id;
      const auto idx = static_cast<std::uint32_t>(i);
      task.payload.assign(reinterpret_cast<const char*>(&idx), sizeof idx);
      tasks.push_back(std::move(task));
    }
  }

  if (!tasks.empty()) {
    proc::SupervisorConfig scfg;
    scfg.workers = batch_.workers;
    scfg.quarantine_kills = batch_.quarantine_kills;
    scfg.task_deadline_s = batch_.task_deadline_s;
    scfg.limits.mem_mb = batch_.worker_mem_mb;
    scfg.limits.cpu_s = batch_.worker_cpu_s;
    scfg.seed = engine_.policy().seed;
    scfg.stop = batch_.stop;

    proc::Supervisor supervisor(
        scfg, [this, &clips](const std::string& payload, int crashes) {
          GANOPC_TYPED_CHECK(StatusCode::kInternal,
                             payload.size() == sizeof(std::uint32_t),
                             "batch: malformed supervised task payload");
          std::uint32_t idx = 0;
          std::memcpy(&idx, payload.data(), sizeof idx);
          GANOPC_TYPED_CHECK(StatusCode::kInternal, idx < clips.size(),
                             "batch: supervised task index out of range");
          maybe_inject_clip_fault(clips[idx].id, crashes);
          const BatchClipResult res = process_clip(clips[idx], crashes);
          ByteWriter w;
          encode_clip_result(w, res);
          return w.buffer();
        });

    supervisor.run(tasks, [&](const proc::TaskResult& tr) {
      const std::size_t i = index_of.at(tr.id);
      BatchClipResult res;
      if (tr.cancelled) {
        // SIGTERM drain resolved this clip before it was dispatched. The row
        // is typed but deliberately NOT journaled: --resume recomputes it.
        summary.drained = true;
        res.id = clips[i].id;
        res.source = clips[i].path.empty() ? "<memory>" : clips[i].path;
        res.code = StatusCode::kCancelled;
        res.error = tr.error;
        res.stage = BatchStage::Failed;
        rows[i] = std::move(res);
        have[i] = 1;
        return;
      }
      if (tr.quarantined) {
        res.id = clips[i].id;
        res.source = clips[i].path.empty() ? "<memory>" : clips[i].path;
        res.code = StatusCode::kQuarantined;
        res.error = "clip crashed " + std::to_string(tr.crashes) +
                    " worker process(es); quarantined as a poison clip";
        res.stage = BatchStage::Failed;
        if (obs::ledger_enabled()) {
          obs::LedgerRecord rec("clip_quarantined");
          rec.field("clip", res.id).field("crashes", tr.crashes);
          obs::ledger_emit(rec);
        }
      } else if (!tr.error.empty()) {
        // The worker fn maps per-clip faults to Status rows itself; an error
        // marshalled back here means the dispatch machinery failed.
        res.id = clips[i].id;
        res.source = clips[i].path.empty() ? "<memory>" : clips[i].path;
        res.code = StatusCode::kInternal;
        res.error = tr.error;
        res.stage = BatchStage::Failed;
      } else {
        ByteReader r(tr.payload.data(), tr.payload.size(),
                     "supervised result for clip '" + tr.id + "'");
        res = decode_clip_result(r, tr.id, "supervised result for '" + tr.id + "'");
        r.expect_exhausted();
      }
      rows[i] = std::move(res);
      have[i] = 1;
      journal_row(clips[i].id, rows[i]);
    });
    summary.worker_deaths = static_cast<int>(supervisor.crash_reports().size());
  }

  for (std::size_t i = 0; i < clips.size(); ++i) {
    GANOPC_TYPED_CHECK(StatusCode::kInternal, have[i] != 0,
                       "batch: no supervised result for clip '" << clips[i].id
                                                                << "'");
    ++(rows[i].ok() ? summary.succeeded : summary.failed);
    if (rows[i].code == StatusCode::kQuarantined) ++summary.quarantined;
    if (rows[i].code == StatusCode::kCancelled) ++summary.cancelled;
    if (obs::metrics_enabled()) count_manifest_row(rows[i]);
    summary.clips.push_back(std::move(rows[i]));
  }
  return summary;
}

void BatchRunner::write_meta(SectionedFileWriter& journal,
                             const std::vector<BatchClip>& clips) const {
  const SubmitPolicy& policy = engine_.policy();
  const core::GanOpcConfig& config = engine_.config();
  ByteWriter& w = journal.section("meta");
  w.pod(kJournalVersion);
  w.pod(policy.seed);
  w.pod(policy.clip_deadline_s);
  w.pod(static_cast<std::int32_t>(policy.max_retries));
  w.pod(static_cast<std::uint8_t>(policy.allow_fallback ? 1 : 0));
  w.pod(policy.l2_accept_factor);
  w.pod(policy.perturb_amplitude);
  w.pod(static_cast<std::uint8_t>(batch_.deterministic_manifest ? 1 : 0));
  w.pod(static_cast<std::int32_t>(batch_.quarantine_kills));
  w.pod(static_cast<std::uint8_t>(engine_.generator() != nullptr ? 1 : 0));
  w.pod(config.clip_nm);
  w.pod(config.litho_grid);
  w.pod(static_cast<std::int32_t>(config.ilt.max_iterations));
  w.pod(static_cast<std::uint32_t>(clips.size()));
  for (const auto& clip : clips) w.str(clip.id);
}

std::vector<BatchClipResult> BatchRunner::load_journal(
    const std::vector<BatchClip>& clips) const {
  const SubmitPolicy& policy = engine_.policy();
  const core::GanOpcConfig& config = engine_.config();
  const SectionedFileReader reader(batch_.journal_path, kJournalMagic);
  ByteReader meta = reader.open("meta");
  const auto version = meta.pod<std::uint32_t>();
  GANOPC_TYPED_CHECK(StatusCode::kInvalidInput, version == kJournalVersion,
                     "batch journal '" << batch_.journal_path
                                       << "': unsupported version " << version);
  bool match = meta.pod<std::uint64_t>() == policy.seed;
  match &= meta.pod<double>() == policy.clip_deadline_s;
  match &= meta.pod<std::int32_t>() == policy.max_retries;
  match &= (meta.pod<std::uint8_t>() != 0) == policy.allow_fallback;
  match &= meta.pod<float>() == policy.l2_accept_factor;
  match &= meta.pod<float>() == policy.perturb_amplitude;
  match &= (meta.pod<std::uint8_t>() != 0) == batch_.deterministic_manifest;
  // quarantine_kills shapes quarantined rows, so it must match; `workers`
  // deliberately does not — resuming with a different pool size (or
  // sequentially) replays the same journal.
  match &= meta.pod<std::int32_t>() == batch_.quarantine_kills;
  match &= (meta.pod<std::uint8_t>() != 0) == (engine_.generator() != nullptr);
  match &= meta.pod<std::int32_t>() == config.clip_nm;
  match &= meta.pod<std::int32_t>() == config.litho_grid;
  match &= meta.pod<std::int32_t>() == config.ilt.max_iterations;
  const auto count = meta.pod<std::uint32_t>();
  match &= count == clips.size();
  if (match)
    for (const auto& clip : clips) match &= meta.str() == clip.id;
  GANOPC_TYPED_CHECK(StatusCode::kInvalidInput, match,
                     "batch journal '"
                         << batch_.journal_path
                         << "' was written by a different batch (clips or "
                            "configuration changed); delete it or drop --resume");

  std::vector<BatchClipResult> out;
  for (const auto& clip : clips) {
    const std::string name = "clip/" + clip.id;
    if (!reader.has(name)) continue;
    ByteReader r = reader.open(name);
    out.push_back(decode_clip_result(
        r, clip.id,
        "journal '" + batch_.journal_path + "' section '" + name + "'"));
    r.expect_exhausted();
  }
  return out;
}

void BatchRunner::write_manifest(const std::string& path,
                                 const BatchSummary& summary) {
  CsvWriter csv(path,
                {"clip", "source", "status", "code", "stage", "termination",
                 "retries", "fallbacks", "ilt_iterations", "l2_px", "l2_nm2",
                 "pvb_nm2", "runtime_s"});
  for (const auto& c : summary.clips)
    csv.row({c.id, c.source, c.ok() ? "ok" : "failed", status_code_name(c.code),
             batch_stage_name(c.stage),
             c.has_termination ? ilt::termination_reason_name(c.termination) : "-",
             std::to_string(c.retries), std::to_string(c.fallbacks),
             std::to_string(c.ilt_iterations), format_g(c.l2_px),
             format_g(c.l2_nm2), std::to_string(c.pvb_nm2),
             format_g(c.runtime_s)});
}

}  // namespace ganopc::engine
