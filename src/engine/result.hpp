// Clip work items and manifest rows — the vocabulary shared by every
// front-end of the engine (one-shot CLI, batch, serve) and by the journal /
// supervised-pipe / serve-response wire formats.
//
// Extracted from the old core batch runner (DESIGN.md §15): the Engine's
// `submit` consumes a BatchClip and produces a BatchClipResult, and the
// codec below keeps the three persistence surfaces field-for-field identical
// by construction.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/status.hpp"
#include "geometry/layout.hpp"
#include "ilt/ilt.hpp"

namespace ganopc {
class ByteWriter;
class ByteReader;
}

namespace ganopc::engine {

/// Which rung of the degradation chain produced the accepted mask.
enum class BatchStage { GanIlt, Ilt, MbOpc, Failed };

const char* batch_stage_name(BatchStage stage);

/// One unit of work: a file path (text / .gds / .glp, loaded lazily so a
/// corrupt file only fails its own clip) or an in-memory layout.
struct BatchClip {
  std::string id;
  std::string path;                    ///< empty when `layout` is set
  std::optional<geom::Layout> layout;  ///< in-memory clip (tests, pipelines)
};

/// Per-clip manifest row. `code == kOk` means `stage` produced a mask that
/// passed the acceptance gate; otherwise `code`/`error` carry the diagnosis
/// of the last failed attempt.
struct BatchClipResult {
  std::string id;
  std::string source;                 ///< file path or "<memory>"
  StatusCode code = StatusCode::kOk;
  std::string error;
  BatchStage stage = BatchStage::Failed;
  bool has_termination = false;       ///< at least one ILT attempt ran
  ilt::TerminationReason termination = ilt::TerminationReason::kConverged;
  int retries = 0;                    ///< perturbed restarts consumed
  int fallbacks = 0;                  ///< chain rungs abandoned
  int ilt_iterations = 0;             ///< iterations of the last ILT attempt
  double l2_px = 0.0;
  double l2_nm2 = 0.0;
  std::int64_t pvb_nm2 = 0;
  double runtime_s = 0.0;             ///< 0 when deterministic_manifest is set
  bool from_journal = false;          ///< replayed on resume, not recomputed

  bool ok() const { return code == StatusCode::kOk; }
};

/// Wire/journal codec for a manifest row's non-id fields — one codec shared
/// by the journal sections, the supervised-mode pipe payloads, and the serve
/// daemon's worker responses, so all three stay field-for-field identical.
void encode_clip_result(ByteWriter& w, const BatchClipResult& res);
BatchClipResult decode_clip_result(ByteReader& r, const std::string& id,
                                   const std::string& context);

/// Kill-matrix fault injection keyed on clip-id suffix (`_segv`, `_kill`,
/// `_oom`, `_hang`, optionally digit-bounded), armed by the `proc.clip_fault`
/// failpoint — exposed so the serve worker path shares the batch tests'
/// fault vocabulary. No-op unless the failpoint is armed.
void maybe_inject_clip_fault(const std::string& id, int crashes);

}  // namespace ganopc::engine
