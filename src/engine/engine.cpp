#include "engine/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <thread>

#include "common/backoff.hpp"
#include "common/failpoint.hpp"
#include "common/prng.hpp"
#include "engine/clip_io.hpp"
#include "geometry/bitmap_ops.hpp"
#include "geometry/raster.hpp"
#include "mbopc/mbopc.hpp"
#include "nn/serialize.hpp"
#include "obs/ledger.hpp"
#include "obs/trace.hpp"

namespace ganopc::engine {

namespace {

std::string format_g(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

litho::LithoSim Engine::build_sim(const EngineOptions& options) {
  options.config.validate();
  const auto backend = litho::make_litho_backend(options.backend);
  return litho::LithoSim(
      backend->build(options.config.optics, options.config.litho_grid,
                     options.config.litho_pixel_nm()),
      options.resist);
}

Engine::Engine(EngineOptions options)
    : config_(options.config),
      policy_(options.policy),
      backend_name_(litho::litho_backend_name(options.backend)),
      sim_(build_sim(options)) {
  GANOPC_TYPED_CHECK(StatusCode::kInvalidInput,
                     policy_.max_retries >= 0 && policy_.clip_deadline_s >= 0.0 &&
                         policy_.l2_accept_factor >= 0.0f &&
                         policy_.perturb_amplitude >= 0.0f &&
                         policy_.retry_backoff_base_s >= 0.0 &&
                         policy_.retry_backoff_cap_s >= 0.0,
                     "engine: retries/deadline/accept-factor/perturbation/"
                     "backoff must be >= 0");
  if (options.generator != nullptr) {
    generator_ = options.generator;
  } else if (!options.generator_path.empty()) {
    // Typed up front: an embedder probing a bad weights path gets kIo from
    // the constructor, not an untyped invariant failure from the file layer.
    GANOPC_TYPED_CHECK(StatusCode::kIo,
                       std::ifstream(options.generator_path).good(),
                       "engine: cannot read generator weights at " +
                           options.generator_path);
    Prng rng(config_.seed);
    owned_generator_ = std::make_unique<core::Generator>(
        config_.gan_grid, config_.base_channels, rng);
    nn::load_parameters(owned_generator_->net(), options.generator_path);
    generator_ = owned_generator_.get();
  }
  if (generator_ != nullptr)
    GANOPC_TYPED_CHECK(StatusCode::kInvalidInput,
                       generator_->image_size() == config_.gan_grid,
                       "engine: generator size mismatch");
}

MaskResult Engine::submit(const BatchClip& clip, const SubmitOptions& opts) const {
  // Adopt the caller's trace context (if any) before the first span opens,
  // so batch.clip and everything beneath it nest under the request span.
  std::optional<obs::TraceContextScope> trace_scope;
  if (opts.trace_id != 0)
    trace_scope.emplace(obs::TraceContext{opts.trace_id, opts.parent_span});
  GANOPC_OBS_SPAN("batch.clip");
  // Every ledger event emitted while this clip is in flight — including the
  // ILT engine's ilt_iter records — carries scope = the clip id.
  obs::LedgerScope ledger_scope(clip.id);
  WallTimer timer;
  MaskResult out;
  BatchClipResult& res = out.row;
  res.id = clip.id;
  res.source = clip.path.empty() ? "<memory>" : clip.path;
  if (obs::ledger_enabled()) {
    obs::LedgerRecord rec("clip_start");
    rec.field("source", res.source);
    obs::ledger_emit(rec);
  }
  // A per-request deadline (serve) overrides the session-wide one; both flow
  // into the ILT watchdog.
  const double deadline_s =
      opts.deadline_s >= 0.0 ? opts.deadline_s : policy_.clip_deadline_s;
  // Test hook: poisoning a clip arms a persistent NaN fault in the litho
  // gradient for exactly this clip's lifetime, so the isolation tests can
  // target clip k of N without touching the others.
  const bool poisoned = GANOPC_FAILPOINT("batch.poison_clip");
  if (poisoned) failpoint::arm("litho.gradient_nan", 0, -1);
  try {
    geom::Layout loaded;
    const geom::Layout* layout = clip.layout ? &*clip.layout : nullptr;
    if (layout == nullptr) {
      GANOPC_OBS_SPAN("batch.load_clip");
      loaded = load_layout_file(clip.path, config_.clip_nm);
      layout = &loaded;
    }
    optimize_clip(*layout, deadline_s, res, timer, opts.start_rung,
                  opts.want_mask ? &out.mask : nullptr);
  } catch (const std::exception& e) {
    const Status s = status_from_exception(e);
    res.code = s.code();
    res.error = s.message();
    res.stage = BatchStage::Failed;
    // A typed Status is handled (retry/fallback chains already ran); anything
    // that still reaches here ended the clip — snapshot the recent event ring
    // so the failure's lead-up survives even if the process dies next.
    if (obs::ledger_enabled())
      obs::flight_dump(std::string("batch.clip_failed.") + status_code_name(s.code()));
  }
  if (poisoned) failpoint::disarm("litho.gradient_nan");
  res.runtime_s = timer.seconds();
  if (obs::ledger_enabled()) {
    obs::LedgerRecord rec("clip_end");
    rec.field("ok", res.ok())
        .field("code", status_code_name(res.code))
        .field("stage", batch_stage_name(res.stage))
        .field("retries", res.retries)
        .field("fallbacks", res.fallbacks)
        .field("l2_px", res.l2_px)
        .field("pvb_nm2", static_cast<double>(res.pvb_nm2))
        .field("wall_s", timer.seconds());
    if (!res.error.empty()) rec.field("error", res.error);
    obs::ledger_emit(rec);
  }
  return out;
}

void Engine::optimize_clip(const geom::Layout& clip, double clip_deadline_s,
                           BatchClipResult& res, const WallTimer& timer,
                           int start_rung, geom::Grid* mask_out) const {
  GANOPC_TYPED_CHECK(StatusCode::kInvalidInput,
                     clip.clip().width() == config_.clip_nm &&
                         clip.clip().height() == config_.clip_nm,
                     "clip window must be " << config_.clip_nm << "x"
                                            << config_.clip_nm << " nm");
  const geom::Grid target =
      geom::rasterize(clip, config_.litho_pixel_nm(), /*threshold=*/true);
  // The acceptance gate is relative to how badly the *uncorrected* target
  // would print: any rung whose mask does not beat that bar by the configured
  // factor is treated as a failed attempt, not a success.
  const double uncorrected = sim_.l2_error(target, target);
  const double accept_l2 =
      policy_.l2_accept_factor > 0.0f
          ? static_cast<double>(policy_.l2_accept_factor) * std::max(uncorrected, 1.0)
          : std::numeric_limits<double>::infinity();

  std::vector<BatchStage> chain;
  if (generator_ != nullptr) chain.push_back(BatchStage::GanIlt);
  chain.push_back(BatchStage::Ilt);
  chain.push_back(BatchStage::MbOpc);
  if (!policy_.allow_fallback) chain.resize(1);
  // Supervised mode retries a crash-survivor one rung down its chain per
  // prior crash (a clip whose GAN+ILT segfaulted a worker restarts at plain
  // ILT, then MB-OPC) — skipped rungs count as fallbacks like any other
  // abandonment. The last rung is never skipped; quarantine caps the loop.
  const int skip = std::min(std::max(start_rung, 0),
                            static_cast<int>(chain.size()) - 1);
  chain.erase(chain.begin(), chain.begin() + skip);
  res.fallbacks += skip;

  Status last(StatusCode::kInternal, "no optimization attempt ran");
  for (std::size_t si = 0; si < chain.size(); ++si) {
    if (si > 0) ++res.fallbacks;
    const BatchStage stage = chain[si];
    // MB-OPC is deterministic in its inputs — a retry would replay the same
    // trajectory, so only the gradient-based rungs get perturbed restarts.
    const int attempts =
        stage == BatchStage::MbOpc ? 1 : 1 + std::max(0, policy_.max_retries);
    for (int attempt = 0; attempt < attempts; ++attempt) {
      double remaining = std::numeric_limits<double>::infinity();
      if (clip_deadline_s > 0.0) {
        remaining = clip_deadline_s - timer.seconds();
        if (remaining <= 0.0) {
          res.code = StatusCode::kDeadlineExceeded;
          res.error = "clip budget of " + format_g(clip_deadline_s) +
                      "s exhausted before " + batch_stage_name(stage);
          res.stage = BatchStage::Failed;
          return;
        }
      }
      if (attempt > 0) {
        ++res.retries;
        // Perturbed restarts back off exponentially with deterministic
        // jitter (keyed on seed + clip id, see common/backoff) instead of
        // re-entering the engine back-to-back: transient pressure — page
        // cache, sibling supervised workers — gets a chance to clear, and
        // the delay sequence is reproducible run-to-run.
        double delay = backoff_delay_s(policy_.retry_backoff_base_s,
                                       policy_.retry_backoff_cap_s, attempt,
                                       policy_.seed ^ fnv1a64(res.id));
        // Never sleep away more than half the clip's remaining budget.
        if (std::isfinite(remaining)) delay = std::min(delay, remaining * 0.5);
        if (delay > 0.0) {
          if (obs::metrics_enabled())
            obs::histogram("batch.retry_delay_s", obs::time_buckets())
                .observe(delay);
          std::this_thread::sleep_for(std::chrono::duration<double>(delay));
        }
      }
      try {
        const bool done =
            stage == BatchStage::MbOpc
                ? attempt_mbopc(clip, accept_l2, res, last, mask_out)
                : attempt_ilt(stage, target, accept_l2, remaining, attempt, res,
                              last, mask_out);
        if (done) return;
        if (last.code() == StatusCode::kDeadlineExceeded) {
          // The watchdog already ate the whole budget; neither a retry nor a
          // fallback rung has any time left to run in.
          res.code = last.code();
          res.error = last.message();
          res.stage = BatchStage::Failed;
          return;
        }
      } catch (const std::exception& e) {
        last = status_from_exception(e);
      }
    }
  }
  res.code = last.code() == StatusCode::kOk ? StatusCode::kInternal : last.code();
  res.error = last.message();
  res.stage = BatchStage::Failed;
}

bool Engine::attempt_ilt(BatchStage stage, const geom::Grid& target,
                         double accept_l2, double remaining_s, int attempt,
                         BatchClipResult& res, Status& last,
                         geom::Grid* mask_out) const {
  GANOPC_OBS_SPAN("batch.attempt_ilt");
  ilt::IltConfig icfg = config_.ilt;
  if (std::isfinite(remaining_s))
    icfg.deadline_s =
        icfg.deadline_s > 0.0 ? std::min(icfg.deadline_s, remaining_s) : remaining_s;
  // The session workspace: warm across submits, so steady-state ILT solves
  // allocate nothing (the engine contract test pins this via the
  // `litho.workspace.grows` counter).
  icfg.workspace = &ilt_workspace_;
  const ilt::IltEngine engine(sim_, icfg);

  geom::Grid init =
      stage == BatchStage::GanIlt ? gan_initial_mask(target) : target;
  if (attempt > 0) perturb(init, res.id, attempt);

  const ilt::IltResult r = engine.optimize(target, init);
  res.has_termination = true;
  res.termination = r.termination;
  res.ilt_iterations = r.iterations;

  if (r.termination == ilt::TerminationReason::kDiverged) {
    last = Status(StatusCode::kLithoNumeric,
                  "ILT diverged (non-finite lithography output) on clip '" +
                      res.id + "'");
    return false;
  }
  if (std::isfinite(r.l2_px) && r.l2_px <= accept_l2) {
    accept(stage, r.mask, r.l2_px, res, mask_out);
    return true;
  }
  if (r.termination == ilt::TerminationReason::kDeadlineExceeded) {
    last = Status(StatusCode::kDeadlineExceeded,
                  "clip '" + res.id +
                      "' hit its deadline before reaching an acceptable mask");
    return false;
  }
  last = Status(StatusCode::kIltStalled,
                std::string("ILT finished (") +
                    ilt::termination_reason_name(r.termination) + ") at L2 " +
                    format_g(r.l2_px) + " px, above the acceptance gate " +
                    format_g(accept_l2) + " px");
  return false;
}

bool Engine::attempt_mbopc(const geom::Layout& clip, double accept_l2,
                           BatchClipResult& res, Status& last,
                           geom::Grid* mask_out) const {
  GANOPC_OBS_SPAN("batch.attempt_mbopc");
  const mbopc::MbOpcEngine engine(sim_, mbopc::MbOpcConfig{});
  const mbopc::MbOpcResult r = engine.optimize(clip);
  if (!std::isfinite(r.l2_px)) {
    last = Status(StatusCode::kLithoNumeric,
                  "MB-OPC produced a non-finite L2 on clip '" + res.id + "'");
    return false;
  }
  if (r.l2_px <= accept_l2) {
    accept(BatchStage::MbOpc, r.mask, r.l2_px, res, mask_out);
    return true;
  }
  last = Status(StatusCode::kIltStalled,
                "MB-OPC fallback finished at L2 " + format_g(r.l2_px) +
                    " px, above the acceptance gate " + format_g(accept_l2) + " px");
  return false;
}

void Engine::accept(BatchStage stage, const geom::Grid& mask, double l2_px,
                    BatchClipResult& res, geom::Grid* mask_out) const {
  res.code = StatusCode::kOk;
  res.error.clear();
  res.stage = stage;
  res.l2_px = l2_px;
  const double px_area =
      static_cast<double>(sim_.pixel_nm()) * static_cast<double>(sim_.pixel_nm());
  res.l2_nm2 = l2_px * px_area;
  res.pvb_nm2 = sim_.pv_band(mask).area_nm2;
  if (mask_out != nullptr) *mask_out = mask;
}

geom::Grid Engine::gan_initial_mask(const geom::Grid& target) const {
  const geom::Grid target_gan = geom::downsample_avg(target, config_.pool_factor());
  const geom::Grid mask_gan = generator_->infer(target_gan);
  return geom::upsample_bilinear(mask_gan, config_.pool_factor());
}

void Engine::perturb(geom::Grid& mask, const std::string& id, int attempt) const {
  // FNV-1a over the clip id keeps the perturbation stream deterministic per
  // (seed, clip, attempt) and independent of batch order or platform.
  Prng rng(policy_.seed ^ fnv1a64(id) ^
           (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(attempt)));
  const double amp = policy_.perturb_amplitude;
  for (auto& v : mask.data)
    v = std::clamp(v + static_cast<float>(rng.uniform(-amp, amp)), 0.0f, 1.0f);
}

}  // namespace ganopc::engine
