// Fault-tolerant batch orchestration over an Engine session (DESIGN.md §9).
//
// BatchRunner executes N clips with per-clip isolation by driving
// Engine::submit for each one: a clip's failure — a corrupt GDS, a numeric
// fault inside the litho engine, a stalled or diverging ILT run — is captured
// as a typed Status on that clip's manifest row while every other clip
// completes normally. The degradation chain, retries, acceptance gate and
// deadlines live in the Engine's SubmitPolicy; this layer owns everything
// batch-shaped: input ordering, the crash-safe journal, resume replay,
// graceful drain, and the supervised worker pool.
//
// When a journal path is set the runner atomically rewrites a sectioned
// container (magic GOPCBAT1, per-section + whole-file CRC32) after every
// clip, so a SIGKILL mid-batch loses at most the in-flight clip: rerunning
// with resume=true replays journaled results and recomputes only the rest.
//
// Supervised mode (workers > 0, DESIGN.md §13) adds *process* isolation on
// top: clips are dispatched to N sandboxed forked workers via
// proc::Supervisor, so a SIGSEGV / OOM kill / hang destroys one worker —
// which is restarted — instead of the batch. A clip that crashes
// `quarantine_kills` workers is quarantined (StatusCode::kQuarantined row),
// and each crash a clip survives drops one rung off its degradation chain
// (a clip that killed a worker during GAN+ILT restarts at plain ILT).
// Results are journaled in completion order as they stream back, keyed by
// clip id, so a supervised run resumes exactly like a sequential one.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/result.hpp"

namespace ganopc {
class SectionedFileWriter;
}

namespace ganopc::engine {

/// Batch-level knobs. Per-clip policy (deadline, retries, acceptance gate,
/// perturbation) lives in the Engine's SubmitPolicy.
struct BatchConfig {
  std::string journal_path;        ///< crash-safe journal ("" disables it)
  bool resume = false;             ///< replay clips already in the journal
  /// Zero every wall-clock field before journaling/manifesting so an
  /// interrupted-and-resumed run is bit-identical to an uninterrupted one.
  bool deterministic_manifest = false;

  // ---- supervised mode (process isolation via proc::Supervisor) ----
  /// 0 = run clips in-process (the default); >= 1 forks that many sandboxed
  /// worker subprocesses and dispatches clips over pipes.
  int workers = 0;
  /// A clip that crashes this many workers is quarantined, not retried.
  int quarantine_kills = 3;
  /// Per-clip wall deadline enforced by supervisor SIGKILL (0 = none).
  /// Unlike the policy's clip_deadline_s — which the in-process watchdog
  /// honors cooperatively — this one catches a wedged worker that stopped
  /// checking.
  double task_deadline_s = 0.0;
  int worker_mem_mb = 0;  ///< per-worker RLIMIT_DATA cap in MiB (0 = none)
  int worker_cpu_s = 0;   ///< per-worker RLIMIT_CPU cap in seconds (0 = none)

  /// Optional graceful-drain flag (SIGTERM handler). Once it reads true the
  /// run stops starting new clips, lets in-flight work finish (bounded by the
  /// usual deadlines), and reports the untouched remainder as kCancelled rows
  /// that are *not* journaled — a later --resume run recomputes exactly them.
  const std::atomic<bool>* stop = nullptr;
};

struct BatchSummary {
  std::vector<BatchClipResult> clips;  ///< one row per input, input order
  int succeeded = 0;
  int failed = 0;
  int resumed = 0;      ///< rows replayed from the journal
  int quarantined = 0;  ///< rows with code kQuarantined (subset of failed)
  int cancelled = 0;    ///< rows drained as kCancelled (subset of failed)
  int worker_deaths = 0;  ///< supervised mode: worker processes lost
  bool drained = false;   ///< the stop flag ended the run early
};

class BatchRunner {
 public:
  /// The engine must outlive the runner; its SubmitPolicy shapes every clip.
  BatchRunner(const Engine& engine, BatchConfig batch);

  /// Process every clip in order. Throws StatusError only for batch-level
  /// faults (empty/duplicate inputs, incompatible resume journal, unwritable
  /// journal); per-clip faults land in the returned rows.
  BatchSummary run(const std::vector<BatchClip>& clips) const;

  /// Convenience: ids are derived from the file stems (deduplicated).
  BatchSummary run_files(const std::vector<std::string>& paths) const;

  /// Machine-readable CSV manifest (one row per clip, input order).
  static void write_manifest(const std::string& path, const BatchSummary& summary);

 private:
  BatchSummary run_supervised(const std::vector<BatchClip>& clips,
                              const std::map<std::string, BatchClipResult>& prior,
                              SectionedFileWriter& journal, bool journaling) const;
  /// Engine::submit + the batch-level runtime zeroing.
  BatchClipResult process_clip(const BatchClip& clip, int start_rung) const;

  void write_meta(SectionedFileWriter& journal,
                  const std::vector<BatchClip>& clips) const;
  std::vector<BatchClipResult> load_journal(const std::vector<BatchClip>& clips) const;

  const Engine& engine_;
  BatchConfig batch_;
};

}  // namespace ganopc::engine
