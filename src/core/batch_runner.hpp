// Fault-tolerant batch mask optimization (DESIGN.md §9).
//
// BatchRunner executes N clips with per-clip isolation: one clip's failure —
// a corrupt GDS, a numeric fault inside the litho engine, a stalled or
// diverging ILT run — is captured as a typed Status on that clip's manifest
// row while every other clip completes normally. Each clip walks a graceful
// degradation chain:
//
//   GAN+ILT (when a generator is attached)
//     -> ILT from scratch (the conventional [7] flow)
//       -> MB-OPC (gradient-free, immune to litho numeric faults)
//         -> reported failure with diagnostics
//
// with bounded perturbed-restart retries at each gradient-based rung (paced
// by exponential backoff with deterministic jitter) and a per-clip
// wall-clock deadline threaded into the ILT watchdog.
//
// When a journal path is set the runner atomically rewrites a sectioned
// container (magic GOPCBAT1, per-section + whole-file CRC32) after every
// clip, so a SIGKILL mid-batch loses at most the in-flight clip: rerunning
// with resume=true replays journaled results and recomputes only the rest.
//
// Supervised mode (workers > 0, DESIGN.md §13) adds *process* isolation on
// top: clips are dispatched to N sandboxed forked workers via
// proc::Supervisor, so a SIGSEGV / OOM kill / hang destroys one worker —
// which is restarted — instead of the batch. A clip that crashes
// `quarantine_kills` workers is quarantined (StatusCode::kQuarantined row),
// and each crash a clip survives drops one rung off its degradation chain
// (a clip that killed a worker during GAN+ILT restarts at plain ILT).
// Results are journaled in completion order as they stream back, keyed by
// clip id, so a supervised run resumes exactly like a sequential one.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/timer.hpp"
#include "core/config.hpp"
#include "core/generator.hpp"
#include "geometry/layout.hpp"
#include "ilt/ilt.hpp"
#include "litho/lithosim.hpp"

namespace ganopc {
class SectionedFileWriter;
class ByteWriter;
class ByteReader;
}

namespace ganopc::core {

/// Which rung of the degradation chain produced the accepted mask.
enum class BatchStage { GanIlt, Ilt, MbOpc, Failed };

const char* batch_stage_name(BatchStage stage);

/// One unit of batch work: a file path (text / .gds / .glp, loaded lazily so
/// a corrupt file only fails its own clip) or an in-memory layout.
struct BatchClip {
  std::string id;
  std::string path;                    ///< empty when `layout` is set
  std::optional<geom::Layout> layout;  ///< in-memory clip (tests, pipelines)
};

/// Per-clip manifest row. `code == kOk` means `stage` produced a mask that
/// passed the acceptance gate; otherwise `code`/`error` carry the diagnosis
/// of the last failed attempt.
struct BatchClipResult {
  std::string id;
  std::string source;                 ///< file path or "<memory>"
  StatusCode code = StatusCode::kOk;
  std::string error;
  BatchStage stage = BatchStage::Failed;
  bool has_termination = false;       ///< at least one ILT attempt ran
  ilt::TerminationReason termination = ilt::TerminationReason::kConverged;
  int retries = 0;                    ///< perturbed restarts consumed
  int fallbacks = 0;                  ///< chain rungs abandoned
  int ilt_iterations = 0;             ///< iterations of the last ILT attempt
  double l2_px = 0.0;
  double l2_nm2 = 0.0;
  std::int64_t pvb_nm2 = 0;
  double runtime_s = 0.0;             ///< 0 when deterministic_manifest is set
  bool from_journal = false;          ///< replayed on resume, not recomputed

  bool ok() const { return code == StatusCode::kOk; }
};

struct BatchConfig {
  double clip_deadline_s = 0.0;    ///< wall-clock budget per clip (0 = none)
  int max_retries = 1;             ///< perturbed restarts per gradient rung
  bool allow_fallback = true;      ///< walk the chain past the first rung
  /// Accept a mask when its L2 <= factor * L2(uncorrected print of target).
  /// 0 accepts any finite L2.
  float l2_accept_factor = 1.0f;
  float perturb_amplitude = 0.08f; ///< uniform noise added on retry restarts
  std::uint64_t seed = 1847;       ///< perturbation stream seed
  std::string journal_path;        ///< crash-safe journal ("" disables it)
  bool resume = false;             ///< replay clips already in the journal
  /// Zero every wall-clock field before journaling/manifesting so an
  /// interrupted-and-resumed run is bit-identical to an uninterrupted one.
  bool deterministic_manifest = false;

  /// Base/cap for the retry backoff sleep before each perturbed restart
  /// (deterministic jitter keyed on seed + clip id; see common/backoff).
  double retry_backoff_base_s = 0.025;
  double retry_backoff_cap_s = 1.0;

  // ---- supervised mode (process isolation via proc::Supervisor) ----
  /// 0 = run clips in-process (the default); >= 1 forks that many sandboxed
  /// worker subprocesses and dispatches clips over pipes.
  int workers = 0;
  /// A clip that crashes this many workers is quarantined, not retried.
  int quarantine_kills = 3;
  /// Per-clip wall deadline enforced by supervisor SIGKILL (0 = none).
  /// Unlike clip_deadline_s — which the in-process watchdog honors
  /// cooperatively — this one catches a wedged worker that stopped checking.
  double task_deadline_s = 0.0;
  int worker_mem_mb = 0;  ///< per-worker RLIMIT_DATA cap in MiB (0 = none)
  int worker_cpu_s = 0;   ///< per-worker RLIMIT_CPU cap in seconds (0 = none)

  /// Optional graceful-drain flag (SIGTERM handler). Once it reads true the
  /// run stops starting new clips, lets in-flight work finish (bounded by the
  /// usual deadlines), and reports the untouched remainder as kCancelled rows
  /// that are *not* journaled — a later --resume run recomputes exactly them.
  const std::atomic<bool>* stop = nullptr;
};

struct BatchSummary {
  std::vector<BatchClipResult> clips;  ///< one row per input, input order
  int succeeded = 0;
  int failed = 0;
  int resumed = 0;      ///< rows replayed from the journal
  int quarantined = 0;  ///< rows with code kQuarantined (subset of failed)
  int cancelled = 0;    ///< rows drained as kCancelled (subset of failed)
  int worker_deaths = 0;  ///< supervised mode: worker processes lost
  bool drained = false;   ///< the stop flag ended the run early
};

/// Per-call knobs for BatchRunner::process_clip beyond the batch-wide config
/// — the request→BatchRunner adaptation point the serve daemon drives.
struct ClipRunOptions {
  /// Overrides BatchConfig::clip_deadline_s when >= 0 (0 = no deadline);
  /// a serve request's remaining budget lands here and flows into the ILT
  /// watchdog unchanged.
  double deadline_s = -1.0;
  /// When set, receives a copy of the accepted mask (empty on failure).
  /// Batch mode leaves this null — only metrics reach the manifest.
  geom::Grid* mask_out = nullptr;
};

class BatchRunner {
 public:
  /// `sim` must run at config.litho_grid; `generator` may be null (the chain
  /// then starts at ILT-from-scratch).
  BatchRunner(const GanOpcConfig& config, Generator* generator,
              const litho::LithoSim& sim, const BatchConfig& batch);

  /// Process every clip in order. Throws StatusError only for batch-level
  /// faults (empty/duplicate inputs, incompatible resume journal, unwritable
  /// journal); per-clip faults land in the returned rows.
  BatchSummary run(const std::vector<BatchClip>& clips) const;

  /// Convenience: ids are derived from the file stems (deduplicated).
  BatchSummary run_files(const std::vector<std::string>& paths) const;

  /// One clip through load + degradation chain, exceptions mapped to Status.
  /// `start_rung` drops that many rungs off the front of the chain (counted
  /// as fallbacks) — supervised mode passes the clip's crash count so a clip
  /// that killed a worker retries one rung more conservatively.
  BatchClipResult process_clip(const BatchClip& clip, int start_rung = 0,
                               const ClipRunOptions& opts = {}) const;

  /// Machine-readable CSV manifest (one row per clip, input order).
  static void write_manifest(const std::string& path, const BatchSummary& summary);

 private:
  BatchSummary run_supervised(const std::vector<BatchClip>& clips,
                              const std::map<std::string, BatchClipResult>& prior,
                              SectionedFileWriter& journal, bool journaling) const;
  geom::Layout load_clip(const std::string& path) const;
  void optimize_clip(const geom::Layout& clip, BatchClipResult& res,
                     const WallTimer& timer, int start_rung,
                     const ClipRunOptions& opts) const;
  bool attempt_ilt(BatchStage stage, const geom::Grid& target, double accept_l2,
                   double remaining_s, int attempt, BatchClipResult& res,
                   Status& last, geom::Grid* mask_out) const;
  bool attempt_mbopc(const geom::Layout& clip, double accept_l2,
                     BatchClipResult& res, Status& last,
                     geom::Grid* mask_out) const;
  void accept(BatchStage stage, const geom::Grid& mask, double l2_px,
              BatchClipResult& res, geom::Grid* mask_out) const;
  geom::Grid gan_initial_mask(const geom::Grid& target) const;
  void perturb(geom::Grid& mask, const std::string& id, int attempt) const;

  void write_meta(SectionedFileWriter& journal,
                  const std::vector<BatchClip>& clips) const;
  std::vector<BatchClipResult> load_journal(const std::vector<BatchClip>& clips) const;

  GanOpcConfig config_;
  Generator* generator_;
  const litho::LithoSim& sim_;
  BatchConfig batch_;
};

/// Wire/journal codec for a manifest row's non-id fields — one codec shared
/// by the journal sections, the supervised-mode pipe payloads, and the serve
/// daemon's worker responses, so all three stay field-for-field identical.
void encode_clip_result(ByteWriter& w, const BatchClipResult& res);
BatchClipResult decode_clip_result(ByteReader& r, const std::string& id,
                                   const std::string& context);

/// Kill-matrix fault injection keyed on clip-id suffix (`_segv`, `_kill`,
/// `_oom`, `_hang`, optionally digit-bounded), armed by the `proc.clip_fault`
/// failpoint — exposed so the serve worker path shares the batch tests'
/// fault vocabulary. No-op unless the failpoint is armed.
void maybe_inject_clip_fault(const std::string& id, int crashes);

}  // namespace ganopc::core
