// Training dataset: synthesized target clips paired with ILT ground-truth
// masks (§4 of the paper: 4000 synthesized clips; reference masks come from
// the ILT engine, exactly as GAN-OPC's M* do).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "common/prng.hpp"
#include "geometry/grid.hpp"
#include "ilt/ilt.hpp"
#include "litho/lithosim.hpp"
#include "nn/tensor.hpp"

namespace ganopc::core {

struct TrainingExample {
  geom::Grid target_litho;  ///< binary target at lithography resolution
  geom::Grid target_gan;    ///< pooled target at GAN resolution
  geom::Grid mask_gan;      ///< pooled ILT reference mask M* at GAN resolution
};

class Dataset {
 public:
  /// Synthesize `config.library_size` clips, run the ILT engine on each for
  /// the reference mask, and pool both images to GAN resolution. Clips run
  /// in parallel across the thread pool. Deterministic in config.seed.
  static Dataset generate(const GanOpcConfig& config, const litho::LithoSim& sim);

  /// Symmetry augmentation: appends the horizontal mirror, vertical mirror
  /// and transpose of every example (4x size). Valid because the imaging
  /// system and the Table 1 rules are symmetric under these maps — the same
  /// reasoning the paper uses when synthesizing uniformly distributed
  /// topologies to fight over-fitting.
  void augment_symmetries();

  std::size_t size() const { return examples_.size(); }
  const TrainingExample& example(std::size_t i) const { return examples_.at(i); }

  /// Sample a mini-batch of m examples into NCHW tensors (with replacement
  /// semantics: a random subset without repeats when m <= size).
  void sample_batch(Prng& rng, int m, nn::Tensor& targets, nn::Tensor& masks) const;

  /// Append an example (used by tests to build tiny datasets by hand).
  void add(TrainingExample example) { examples_.push_back(std::move(example)); }

  /// Binary save/load so bench harnesses can reuse expensive ILT ground
  /// truth across runs. Load verifies grid geometry against `config`.
  void save(const std::string& path) const;
  static Dataset load(const std::string& path, const GanOpcConfig& config);

 private:
  std::vector<TrainingExample> examples_;
};

}  // namespace ganopc::core
