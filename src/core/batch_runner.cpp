#include "core/batch_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "common/backoff.hpp"
#include "common/csv.hpp"
#include "common/failpoint.hpp"
#include "common/prng.hpp"
#include "common/sectioned_file.hpp"
#include "gds/gds.hpp"
#include "geometry/bitmap_ops.hpp"
#include "geometry/raster.hpp"
#include "layout/glp.hpp"
#include "mbopc/mbopc.hpp"
#include "obs/ledger.hpp"
#include "obs/trace.hpp"
#include "proc/supervisor.hpp"

namespace ganopc::core {

namespace {

constexpr char kJournalMagic[] = "GOPCBAT1";
// v2: meta carries quarantine_kills; rows may carry StatusCode::kQuarantined.
// `workers` is deliberately *not* journaled — a supervised run may be resumed
// sequentially or with a different worker count and replay identically.
constexpr std::uint32_t kJournalVersion = 2;

bool file_exists(const std::string& path) {
  return std::ifstream(path, std::ios::binary).good();
}

// "clips/wire_03.gds" -> "wire_03"
std::string file_stem(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos && dot > 0) name.resize(dot);
  return name;
}

std::string format_g(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

// Per-row metrics incremented as manifest rows are finalized, so the
// exported counters always agree with the written CSV (including rows
// replayed from the journal on resume).
void count_manifest_row(const BatchClipResult& res) {
  obs::counter(res.ok() ? "batch.clips.ok" : "batch.clips.failed").inc();
  obs::counter(std::string("batch.stage.") + batch_stage_name(res.stage)).inc();
  if (res.retries > 0)
    obs::counter("batch.retries").inc(static_cast<std::uint64_t>(res.retries));
  if (res.fallbacks > 0)
    obs::counter("batch.fallbacks").inc(static_cast<std::uint64_t>(res.fallbacks));
  if (res.from_journal) obs::counter("batch.clips.resumed").inc();
  if (res.code == StatusCode::kQuarantined)
    obs::counter("batch.clips.quarantined").inc();
  if (res.code == StatusCode::kCancelled)
    obs::counter("batch.clips.cancelled").inc();
}

}  // namespace

// One codec for a manifest row's non-id fields, shared by the journal
// sections, the supervised-mode wire payloads, and the serve daemon's worker
// responses so all three stay field-for-field identical by construction.
void encode_clip_result(ByteWriter& w, const BatchClipResult& res) {
  w.str(res.source);
  w.pod(static_cast<std::uint32_t>(res.code));
  w.str(res.error);
  w.pod(static_cast<std::uint32_t>(res.stage));
  w.pod(static_cast<std::uint8_t>(res.has_termination ? 1 : 0));
  w.pod(static_cast<std::uint32_t>(res.termination));
  w.pod(static_cast<std::int32_t>(res.retries));
  w.pod(static_cast<std::int32_t>(res.fallbacks));
  w.pod(static_cast<std::int32_t>(res.ilt_iterations));
  w.pod(res.l2_px);
  w.pod(res.l2_nm2);
  w.pod(res.pvb_nm2);
  w.pod(res.runtime_s);
}

BatchClipResult decode_clip_result(ByteReader& r, const std::string& id,
                                   const std::string& context) {
  BatchClipResult res;
  res.id = id;
  res.source = r.str();
  const auto code = r.pod<std::uint32_t>();
  res.error = r.str(1 << 16);
  const auto stage = r.pod<std::uint32_t>();
  res.has_termination = r.pod<std::uint8_t>() != 0;
  const auto termination = r.pod<std::uint32_t>();
  res.retries = r.pod<std::int32_t>();
  res.fallbacks = r.pod<std::int32_t>();
  res.ilt_iterations = r.pod<std::int32_t>();
  res.l2_px = r.pod<double>();
  res.l2_nm2 = r.pod<double>();
  res.pvb_nm2 = r.pod<std::int64_t>();
  res.runtime_s = r.pod<double>();
  // No expect_exhausted() here: the serve daemon appends response fields
  // (mask bytes) after the row; strict callers check exhaustion themselves.
  GANOPC_TYPED_CHECK(
      StatusCode::kInvalidInput,
      code <= static_cast<std::uint32_t>(StatusCode::kQuarantined) &&
          stage <= static_cast<std::uint32_t>(BatchStage::Failed) &&
          termination <= static_cast<std::uint32_t>(
                             ilt::TerminationReason::kDeadlineExceeded),
      "batch: out-of-range enum in " << context);
  res.code = static_cast<StatusCode>(code);
  res.stage = static_cast<BatchStage>(stage);
  res.termination = static_cast<ilt::TerminationReason>(termination);
  return res;
}

// Kill-matrix fault injection for the supervised-mode tests, armed by the
// `proc.clip_fault` failpoint (off => zero cost, tests only). Faults are
// selected by clip-id suffix so a test can poison clip k of N without caring
// which worker draws it; a trailing digit bounds the crash count so
// restart-then-succeed and quarantine-after-K are both expressible:
//   <id>_segv  / _kill / _oom / _hang   -> faults on every delivery
//   <id>_segv2 (etc.)                   -> faults until `crashes` reaches 2
// Failpoint counters are per-process, so a restarted worker would re-arm
// them identically — the supervisor-tracked crash count is the only state
// that survives a worker death, hence it gates the bounded variants.
void maybe_inject_clip_fault(const std::string& id, int crashes) {
  if (!GANOPC_FAILPOINT("proc.clip_fault")) return;
  std::string marker = id;
  int bound = -1;  // -1 = unbounded: fault on every delivery
  if (!marker.empty() && marker.back() >= '0' && marker.back() <= '9') {
    bound = marker.back() - '0';
    marker.pop_back();
  }
  if (bound >= 0 && crashes >= bound) return;  // crashed enough; succeed now
  if (marker.ends_with("_segv")) {
    std::raise(SIGSEGV);  // sanitizers report + exit(1); either way it dies
    std::abort();
  }
  if (marker.ends_with("_kill")) {
    std::raise(SIGKILL);  // uncatchable, like the kernel OOM killer
    std::abort();
  }
  if (marker.ends_with("_oom")) {
    // Grow until the worker's RLIMIT_DATA refuses the allocation, touching
    // every page so the growth is real; then die the way the OOM killer
    // would. Bounded at 2 GiB so a missing rlimit cannot take the host down.
    constexpr std::size_t kChunk = 64u << 20;
    for (std::size_t total = 0; total < (2048u << 20); total += kChunk) {
      char* p = static_cast<char*>(std::malloc(kChunk));
      if (p == nullptr) break;
      std::memset(p, 0x5A, kChunk);
    }
    std::raise(SIGKILL);
    std::abort();
  }
  if (marker.ends_with("_hang")) {
    // Wedged computation: heartbeats keep ticking (the beat thread is alive)
    // but the task never returns — only the task deadline can catch this.
    for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

const char* batch_stage_name(BatchStage stage) {
  switch (stage) {
    case BatchStage::GanIlt: return "gan+ilt";
    case BatchStage::Ilt: return "ilt";
    case BatchStage::MbOpc: return "mbopc";
    case BatchStage::Failed: return "failed";
  }
  return "?";
}

BatchRunner::BatchRunner(const GanOpcConfig& config, Generator* generator,
                         const litho::LithoSim& sim, const BatchConfig& batch)
    : config_(config), generator_(generator), sim_(sim), batch_(batch) {
  config_.validate();
  GANOPC_TYPED_CHECK(StatusCode::kInvalidInput,
                     sim.grid_size() == config_.litho_grid,
                     "batch: simulator grid mismatch");
  if (generator_ != nullptr)
    GANOPC_TYPED_CHECK(StatusCode::kInvalidInput,
                       generator_->image_size() == config_.gan_grid,
                       "batch: generator size mismatch");
  GANOPC_TYPED_CHECK(StatusCode::kInvalidInput,
                     batch.max_retries >= 0 && batch.clip_deadline_s >= 0.0 &&
                         batch.l2_accept_factor >= 0.0f &&
                         batch.perturb_amplitude >= 0.0f,
                     "batch: retries/deadline/accept-factor/perturbation must be >= 0");
  GANOPC_TYPED_CHECK(StatusCode::kInvalidInput,
                     !batch.resume || !batch.journal_path.empty(),
                     "batch: resume requires a journal path");
  GANOPC_TYPED_CHECK(StatusCode::kInvalidInput,
                     batch.workers >= 0 && batch.quarantine_kills >= 1 &&
                         batch.task_deadline_s >= 0.0 &&
                         batch.worker_mem_mb >= 0 && batch.worker_cpu_s >= 0 &&
                         batch.retry_backoff_base_s >= 0.0 &&
                         batch.retry_backoff_cap_s >= 0.0,
                     "batch: workers/quarantine/limits/backoff must be >= 0 "
                     "(quarantine_kills >= 1)");
}

BatchSummary BatchRunner::run_files(const std::vector<std::string>& paths) const {
  std::vector<BatchClip> clips;
  clips.reserve(paths.size());
  std::set<std::string> seen;
  for (const auto& path : paths) {
    std::string id = file_stem(path);
    const std::string base = id;
    for (int n = 2; !seen.insert(id).second; ++n) id = base + "#" + std::to_string(n);
    clips.push_back({id, path, std::nullopt});
  }
  return run(clips);
}

BatchSummary BatchRunner::run(const std::vector<BatchClip>& clips) const {
  GANOPC_TYPED_CHECK(StatusCode::kInvalidInput, !clips.empty(),
                     "batch: no clips to process");
  {
    std::set<std::string> ids;
    for (const auto& clip : clips)
      GANOPC_TYPED_CHECK(StatusCode::kInvalidInput, ids.insert(clip.id).second,
                         "batch: duplicate clip id '" << clip.id << "'");
  }

  std::map<std::string, BatchClipResult> prior;
  if (batch_.resume && file_exists(batch_.journal_path))
    for (auto& res : load_journal(clips)) {
      const std::string id = res.id;
      prior.emplace(id, std::move(res));
    }

  SectionedFileWriter journal{std::string(kJournalMagic)};
  const bool journaling = !batch_.journal_path.empty();
  if (journaling) write_meta(journal, clips);

  if (batch_.workers > 0) return run_supervised(clips, prior, journal, journaling);

  BatchSummary summary;
  summary.clips.reserve(clips.size());
  for (const auto& clip : clips) {
    BatchClipResult res;
    const auto it = prior.find(clip.id);
    if (it != prior.end()) {
      res = it->second;
      res.from_journal = true;
      ++summary.resumed;
    } else if (batch_.stop != nullptr &&
               batch_.stop->load(std::memory_order_relaxed)) {
      // Graceful drain: the remainder becomes kCancelled rows that are NOT
      // journaled, so a --resume run recomputes exactly the drained clips.
      summary.drained = true;
      res.id = clip.id;
      res.source = clip.path.empty() ? "<memory>" : clip.path;
      res.code = StatusCode::kCancelled;
      res.error = "cancelled: batch drain requested before this clip started";
      res.stage = BatchStage::Failed;
      ++summary.failed;
      ++summary.cancelled;
      if (obs::metrics_enabled()) count_manifest_row(res);
      summary.clips.push_back(std::move(res));
      continue;
    } else {
      res = process_clip(clip);
    }
    ++(res.ok() ? summary.succeeded : summary.failed);
    if (res.code == StatusCode::kQuarantined) ++summary.quarantined;
    if (obs::metrics_enabled()) count_manifest_row(res);
    if (journaling) {
      encode_clip_result(journal.section("clip/" + clip.id), res);
      journal.write(batch_.journal_path);
      // Crash simulation for the kill-and-resume robustness test: dies right
      // after a journal commit, exactly where a real power cut would land.
      if (GANOPC_FAILPOINT("batch.kill")) {
#ifdef SIGKILL
        std::raise(SIGKILL);
#endif
        std::abort();
      }
    }
    summary.clips.push_back(std::move(res));
  }
  return summary;
}

BatchSummary BatchRunner::run_supervised(
    const std::vector<BatchClip>& clips,
    const std::map<std::string, BatchClipResult>& prior,
    SectionedFileWriter& journal, bool journaling) const {
  std::vector<BatchClipResult> rows(clips.size());
  std::vector<char> have(clips.size(), 0);
  std::map<std::string, std::size_t> index_of;
  for (std::size_t i = 0; i < clips.size(); ++i) index_of.emplace(clips[i].id, i);

  BatchSummary summary;
  auto journal_row = [&](const std::string& id, const BatchClipResult& res) {
    if (!journaling) return;
    encode_clip_result(journal.section("clip/" + id), res);
    journal.write(batch_.journal_path);
    // Same post-commit crash point as the sequential path: the supervised
    // kill-and-resume test SIGKILLs the *dispatcher* here, mid-fan-out.
    if (GANOPC_FAILPOINT("batch.kill")) {
#ifdef SIGKILL
      std::raise(SIGKILL);
#endif
      std::abort();
    }
  };

  // Replay journaled rows first, then fan the remainder out to the workers.
  // The payload is just the clip index: workers are fork() twins of this
  // process and share the clip list by inheritance.
  std::vector<proc::Task> tasks;
  for (std::size_t i = 0; i < clips.size(); ++i) {
    const auto it = prior.find(clips[i].id);
    if (it != prior.end()) {
      rows[i] = it->second;
      rows[i].from_journal = true;
      have[i] = 1;
      ++summary.resumed;
      journal_row(clips[i].id, rows[i]);
    } else {
      proc::Task task;
      task.id = clips[i].id;
      const auto idx = static_cast<std::uint32_t>(i);
      task.payload.assign(reinterpret_cast<const char*>(&idx), sizeof idx);
      tasks.push_back(std::move(task));
    }
  }

  if (!tasks.empty()) {
    proc::SupervisorConfig scfg;
    scfg.workers = batch_.workers;
    scfg.quarantine_kills = batch_.quarantine_kills;
    scfg.task_deadline_s = batch_.task_deadline_s;
    scfg.limits.mem_mb = batch_.worker_mem_mb;
    scfg.limits.cpu_s = batch_.worker_cpu_s;
    scfg.seed = batch_.seed;
    scfg.stop = batch_.stop;

    proc::Supervisor supervisor(
        scfg, [this, &clips](const std::string& payload, int crashes) {
          GANOPC_TYPED_CHECK(StatusCode::kInternal,
                             payload.size() == sizeof(std::uint32_t),
                             "batch: malformed supervised task payload");
          std::uint32_t idx = 0;
          std::memcpy(&idx, payload.data(), sizeof idx);
          GANOPC_TYPED_CHECK(StatusCode::kInternal, idx < clips.size(),
                             "batch: supervised task index out of range");
          maybe_inject_clip_fault(clips[idx].id, crashes);
          const BatchClipResult res = process_clip(clips[idx], crashes);
          ByteWriter w;
          encode_clip_result(w, res);
          return w.buffer();
        });

    supervisor.run(tasks, [&](const proc::TaskResult& tr) {
      const std::size_t i = index_of.at(tr.id);
      BatchClipResult res;
      if (tr.cancelled) {
        // SIGTERM drain resolved this clip before it was dispatched. The row
        // is typed but deliberately NOT journaled: --resume recomputes it.
        summary.drained = true;
        res.id = clips[i].id;
        res.source = clips[i].path.empty() ? "<memory>" : clips[i].path;
        res.code = StatusCode::kCancelled;
        res.error = tr.error;
        res.stage = BatchStage::Failed;
        rows[i] = std::move(res);
        have[i] = 1;
        return;
      }
      if (tr.quarantined) {
        res.id = clips[i].id;
        res.source = clips[i].path.empty() ? "<memory>" : clips[i].path;
        res.code = StatusCode::kQuarantined;
        res.error = "clip crashed " + std::to_string(tr.crashes) +
                    " worker process(es); quarantined as a poison clip";
        res.stage = BatchStage::Failed;
        if (obs::ledger_enabled()) {
          obs::LedgerRecord rec("clip_quarantined");
          rec.field("clip", res.id).field("crashes", tr.crashes);
          obs::ledger_emit(rec);
        }
      } else if (!tr.error.empty()) {
        // The worker fn maps per-clip faults to Status rows itself; an error
        // marshalled back here means the dispatch machinery failed.
        res.id = clips[i].id;
        res.source = clips[i].path.empty() ? "<memory>" : clips[i].path;
        res.code = StatusCode::kInternal;
        res.error = tr.error;
        res.stage = BatchStage::Failed;
      } else {
        ByteReader r(tr.payload.data(), tr.payload.size(),
                     "supervised result for clip '" + tr.id + "'");
        res = decode_clip_result(r, tr.id, "supervised result for '" + tr.id + "'");
        r.expect_exhausted();
      }
      rows[i] = std::move(res);
      have[i] = 1;
      journal_row(clips[i].id, rows[i]);
    });
    summary.worker_deaths = static_cast<int>(supervisor.crash_reports().size());
  }

  for (std::size_t i = 0; i < clips.size(); ++i) {
    GANOPC_TYPED_CHECK(StatusCode::kInternal, have[i] != 0,
                       "batch: no supervised result for clip '" << clips[i].id
                                                                << "'");
    ++(rows[i].ok() ? summary.succeeded : summary.failed);
    if (rows[i].code == StatusCode::kQuarantined) ++summary.quarantined;
    if (rows[i].code == StatusCode::kCancelled) ++summary.cancelled;
    if (obs::metrics_enabled()) count_manifest_row(rows[i]);
    summary.clips.push_back(std::move(rows[i]));
  }
  return summary;
}

BatchClipResult BatchRunner::process_clip(const BatchClip& clip, int start_rung,
                                          const ClipRunOptions& opts) const {
  GANOPC_OBS_SPAN("batch.clip");
  // Every ledger event emitted while this clip is in flight — including the
  // ILT engine's ilt_iter records — carries scope = the clip id.
  obs::LedgerScope ledger_scope(clip.id);
  WallTimer timer;
  BatchClipResult res;
  res.id = clip.id;
  res.source = clip.path.empty() ? "<memory>" : clip.path;
  if (obs::ledger_enabled()) {
    obs::LedgerRecord rec("clip_start");
    rec.field("source", res.source);
    obs::ledger_emit(rec);
  }
  // Test hook: poisoning a clip arms a persistent NaN fault in the litho
  // gradient for exactly this clip's lifetime, so the isolation tests can
  // target clip k of N without touching the others.
  const bool poisoned = GANOPC_FAILPOINT("batch.poison_clip");
  if (poisoned) failpoint::arm("litho.gradient_nan", 0, -1);
  try {
    const geom::Layout layout = clip.layout ? *clip.layout : load_clip(clip.path);
    optimize_clip(layout, res, timer, start_rung, opts);
  } catch (const std::exception& e) {
    const Status s = status_from_exception(e);
    res.code = s.code();
    res.error = s.message();
    res.stage = BatchStage::Failed;
    // A typed Status is handled (retry/fallback chains already ran); anything
    // that still reaches here ended the clip — snapshot the recent event ring
    // so the failure's lead-up survives even if the process dies next.
    if (obs::ledger_enabled())
      obs::flight_dump(std::string("batch.clip_failed.") + status_code_name(s.code()));
  }
  if (poisoned) failpoint::disarm("litho.gradient_nan");
  res.runtime_s = batch_.deterministic_manifest ? 0.0 : timer.seconds();
  if (obs::ledger_enabled()) {
    obs::LedgerRecord rec("clip_end");
    rec.field("ok", res.ok())
        .field("code", status_code_name(res.code))
        .field("stage", batch_stage_name(res.stage))
        .field("retries", res.retries)
        .field("fallbacks", res.fallbacks)
        .field("l2_px", res.l2_px)
        .field("pvb_nm2", static_cast<double>(res.pvb_nm2))
        .field("wall_s", timer.seconds());
    if (!res.error.empty()) rec.field("error", res.error);
    obs::ledger_emit(rec);
  }
  return res;
}

geom::Layout BatchRunner::load_clip(const std::string& path) const {
  GANOPC_OBS_SPAN("batch.load_clip");
  const geom::Rect clip{0, 0, config_.clip_nm, config_.clip_nm};
  if (path.ends_with(".gds")) return gds::gds_to_layout(gds::read_gds(path), clip);
  if (path.ends_with(".glp")) return layout::read_glp(path, clip);
  return geom::Layout::load(path);
}

void BatchRunner::optimize_clip(const geom::Layout& clip, BatchClipResult& res,
                                const WallTimer& timer, int start_rung,
                                const ClipRunOptions& opts) const {
  // A per-request deadline (serve) overrides the batch-wide one; both flow
  // into the ILT watchdog through `remaining` below.
  const double clip_deadline_s =
      opts.deadline_s >= 0.0 ? opts.deadline_s : batch_.clip_deadline_s;
  GANOPC_TYPED_CHECK(StatusCode::kInvalidInput,
                     clip.clip().width() == config_.clip_nm &&
                         clip.clip().height() == config_.clip_nm,
                     "clip window must be " << config_.clip_nm << "x"
                                            << config_.clip_nm << " nm");
  const geom::Grid target =
      geom::rasterize(clip, config_.litho_pixel_nm(), /*threshold=*/true);
  // The acceptance gate is relative to how badly the *uncorrected* target
  // would print: any rung whose mask does not beat that bar by the configured
  // factor is treated as a failed attempt, not a success.
  const double uncorrected = sim_.l2_error(target, target);
  const double accept_l2 =
      batch_.l2_accept_factor > 0.0f
          ? static_cast<double>(batch_.l2_accept_factor) * std::max(uncorrected, 1.0)
          : std::numeric_limits<double>::infinity();

  std::vector<BatchStage> chain;
  if (generator_ != nullptr) chain.push_back(BatchStage::GanIlt);
  chain.push_back(BatchStage::Ilt);
  chain.push_back(BatchStage::MbOpc);
  if (!batch_.allow_fallback) chain.resize(1);
  // Supervised mode retries a crash-survivor one rung down its chain per
  // prior crash (a clip whose GAN+ILT segfaulted a worker restarts at plain
  // ILT, then MB-OPC) — skipped rungs count as fallbacks like any other
  // abandonment. The last rung is never skipped; quarantine caps the loop.
  const int skip = std::min(std::max(start_rung, 0),
                            static_cast<int>(chain.size()) - 1);
  chain.erase(chain.begin(), chain.begin() + skip);
  res.fallbacks += skip;

  Status last(StatusCode::kInternal, "no optimization attempt ran");
  for (std::size_t si = 0; si < chain.size(); ++si) {
    if (si > 0) ++res.fallbacks;
    const BatchStage stage = chain[si];
    // MB-OPC is deterministic in its inputs — a retry would replay the same
    // trajectory, so only the gradient-based rungs get perturbed restarts.
    const int attempts =
        stage == BatchStage::MbOpc ? 1 : 1 + std::max(0, batch_.max_retries);
    for (int attempt = 0; attempt < attempts; ++attempt) {
      double remaining = std::numeric_limits<double>::infinity();
      if (clip_deadline_s > 0.0) {
        remaining = clip_deadline_s - timer.seconds();
        if (remaining <= 0.0) {
          res.code = StatusCode::kDeadlineExceeded;
          res.error = "clip budget of " + format_g(clip_deadline_s) +
                      "s exhausted before " + batch_stage_name(stage);
          res.stage = BatchStage::Failed;
          return;
        }
      }
      if (attempt > 0) {
        ++res.retries;
        // Perturbed restarts back off exponentially with deterministic
        // jitter (keyed on seed + clip id, see common/backoff) instead of
        // re-entering the engine back-to-back: transient pressure — page
        // cache, sibling supervised workers — gets a chance to clear, and
        // the delay sequence is reproducible run-to-run.
        double delay = backoff_delay_s(batch_.retry_backoff_base_s,
                                       batch_.retry_backoff_cap_s, attempt,
                                       batch_.seed ^ fnv1a64(res.id));
        // Never sleep away more than half the clip's remaining budget.
        if (std::isfinite(remaining)) delay = std::min(delay, remaining * 0.5);
        if (delay > 0.0) {
          if (obs::metrics_enabled())
            obs::histogram("batch.retry_delay_s", obs::time_buckets())
                .observe(delay);
          std::this_thread::sleep_for(std::chrono::duration<double>(delay));
        }
      }
      try {
        const bool done =
            stage == BatchStage::MbOpc
                ? attempt_mbopc(clip, accept_l2, res, last, opts.mask_out)
                : attempt_ilt(stage, target, accept_l2, remaining, attempt, res,
                              last, opts.mask_out);
        if (done) return;
        if (last.code() == StatusCode::kDeadlineExceeded) {
          // The watchdog already ate the whole budget; neither a retry nor a
          // fallback rung has any time left to run in.
          res.code = last.code();
          res.error = last.message();
          res.stage = BatchStage::Failed;
          return;
        }
      } catch (const std::exception& e) {
        last = status_from_exception(e);
      }
    }
  }
  res.code = last.code() == StatusCode::kOk ? StatusCode::kInternal : last.code();
  res.error = last.message();
  res.stage = BatchStage::Failed;
}

bool BatchRunner::attempt_ilt(BatchStage stage, const geom::Grid& target,
                              double accept_l2, double remaining_s, int attempt,
                              BatchClipResult& res, Status& last,
                              geom::Grid* mask_out) const {
  GANOPC_OBS_SPAN("batch.attempt_ilt");
  ilt::IltConfig icfg = config_.ilt;
  if (std::isfinite(remaining_s))
    icfg.deadline_s =
        icfg.deadline_s > 0.0 ? std::min(icfg.deadline_s, remaining_s) : remaining_s;
  const ilt::IltEngine engine(sim_, icfg);

  geom::Grid init =
      stage == BatchStage::GanIlt ? gan_initial_mask(target) : target;
  if (attempt > 0) perturb(init, res.id, attempt);

  const ilt::IltResult r = engine.optimize(target, init);
  res.has_termination = true;
  res.termination = r.termination;
  res.ilt_iterations = r.iterations;

  if (r.termination == ilt::TerminationReason::kDiverged) {
    last = Status(StatusCode::kLithoNumeric,
                  "ILT diverged (non-finite lithography output) on clip '" +
                      res.id + "'");
    return false;
  }
  if (std::isfinite(r.l2_px) && r.l2_px <= accept_l2) {
    accept(stage, r.mask, r.l2_px, res, mask_out);
    return true;
  }
  if (r.termination == ilt::TerminationReason::kDeadlineExceeded) {
    last = Status(StatusCode::kDeadlineExceeded,
                  "clip '" + res.id +
                      "' hit its deadline before reaching an acceptable mask");
    return false;
  }
  last = Status(StatusCode::kIltStalled,
                std::string("ILT finished (") +
                    ilt::termination_reason_name(r.termination) + ") at L2 " +
                    format_g(r.l2_px) + " px, above the acceptance gate " +
                    format_g(accept_l2) + " px");
  return false;
}

bool BatchRunner::attempt_mbopc(const geom::Layout& clip, double accept_l2,
                                BatchClipResult& res, Status& last,
                                geom::Grid* mask_out) const {
  GANOPC_OBS_SPAN("batch.attempt_mbopc");
  const mbopc::MbOpcEngine engine(sim_, mbopc::MbOpcConfig{});
  const mbopc::MbOpcResult r = engine.optimize(clip);
  if (!std::isfinite(r.l2_px)) {
    last = Status(StatusCode::kLithoNumeric,
                  "MB-OPC produced a non-finite L2 on clip '" + res.id + "'");
    return false;
  }
  if (r.l2_px <= accept_l2) {
    accept(BatchStage::MbOpc, r.mask, r.l2_px, res, mask_out);
    return true;
  }
  last = Status(StatusCode::kIltStalled,
                "MB-OPC fallback finished at L2 " + format_g(r.l2_px) +
                    " px, above the acceptance gate " + format_g(accept_l2) + " px");
  return false;
}

void BatchRunner::accept(BatchStage stage, const geom::Grid& mask, double l2_px,
                         BatchClipResult& res, geom::Grid* mask_out) const {
  res.code = StatusCode::kOk;
  res.error.clear();
  res.stage = stage;
  res.l2_px = l2_px;
  const double px_area =
      static_cast<double>(sim_.pixel_nm()) * static_cast<double>(sim_.pixel_nm());
  res.l2_nm2 = l2_px * px_area;
  res.pvb_nm2 = sim_.pv_band(mask).area_nm2;
  if (mask_out != nullptr) *mask_out = mask;
}

geom::Grid BatchRunner::gan_initial_mask(const geom::Grid& target) const {
  const geom::Grid target_gan = geom::downsample_avg(target, config_.pool_factor());
  const geom::Grid mask_gan = generator_->infer(target_gan);
  return geom::upsample_bilinear(mask_gan, config_.pool_factor());
}

void BatchRunner::perturb(geom::Grid& mask, const std::string& id, int attempt) const {
  // FNV-1a over the clip id keeps the perturbation stream deterministic per
  // (seed, clip, attempt) and independent of batch order or platform.
  Prng rng(batch_.seed ^ fnv1a64(id) ^
           (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(attempt)));
  const double amp = batch_.perturb_amplitude;
  for (auto& v : mask.data)
    v = std::clamp(v + static_cast<float>(rng.uniform(-amp, amp)), 0.0f, 1.0f);
}

void BatchRunner::write_meta(SectionedFileWriter& journal,
                             const std::vector<BatchClip>& clips) const {
  ByteWriter& w = journal.section("meta");
  w.pod(kJournalVersion);
  w.pod(batch_.seed);
  w.pod(batch_.clip_deadline_s);
  w.pod(static_cast<std::int32_t>(batch_.max_retries));
  w.pod(static_cast<std::uint8_t>(batch_.allow_fallback ? 1 : 0));
  w.pod(batch_.l2_accept_factor);
  w.pod(batch_.perturb_amplitude);
  w.pod(static_cast<std::uint8_t>(batch_.deterministic_manifest ? 1 : 0));
  w.pod(static_cast<std::int32_t>(batch_.quarantine_kills));
  w.pod(static_cast<std::uint8_t>(generator_ != nullptr ? 1 : 0));
  w.pod(config_.clip_nm);
  w.pod(config_.litho_grid);
  w.pod(static_cast<std::int32_t>(config_.ilt.max_iterations));
  w.pod(static_cast<std::uint32_t>(clips.size()));
  for (const auto& clip : clips) w.str(clip.id);
}

std::vector<BatchClipResult> BatchRunner::load_journal(
    const std::vector<BatchClip>& clips) const {
  const SectionedFileReader reader(batch_.journal_path, kJournalMagic);
  ByteReader meta = reader.open("meta");
  const auto version = meta.pod<std::uint32_t>();
  GANOPC_TYPED_CHECK(StatusCode::kInvalidInput, version == kJournalVersion,
                     "batch journal '" << batch_.journal_path
                                       << "': unsupported version " << version);
  bool match = meta.pod<std::uint64_t>() == batch_.seed;
  match &= meta.pod<double>() == batch_.clip_deadline_s;
  match &= meta.pod<std::int32_t>() == batch_.max_retries;
  match &= (meta.pod<std::uint8_t>() != 0) == batch_.allow_fallback;
  match &= meta.pod<float>() == batch_.l2_accept_factor;
  match &= meta.pod<float>() == batch_.perturb_amplitude;
  match &= (meta.pod<std::uint8_t>() != 0) == batch_.deterministic_manifest;
  // quarantine_kills shapes quarantined rows, so it must match; `workers`
  // deliberately does not — resuming with a different pool size (or
  // sequentially) replays the same journal.
  match &= meta.pod<std::int32_t>() == batch_.quarantine_kills;
  match &= (meta.pod<std::uint8_t>() != 0) == (generator_ != nullptr);
  match &= meta.pod<std::int32_t>() == config_.clip_nm;
  match &= meta.pod<std::int32_t>() == config_.litho_grid;
  match &= meta.pod<std::int32_t>() == config_.ilt.max_iterations;
  const auto count = meta.pod<std::uint32_t>();
  match &= count == clips.size();
  if (match)
    for (const auto& clip : clips) match &= meta.str() == clip.id;
  GANOPC_TYPED_CHECK(StatusCode::kInvalidInput, match,
                     "batch journal '"
                         << batch_.journal_path
                         << "' was written by a different batch (clips or "
                            "configuration changed); delete it or drop --resume");

  std::vector<BatchClipResult> out;
  for (const auto& clip : clips) {
    const std::string name = "clip/" + clip.id;
    if (!reader.has(name)) continue;
    ByteReader r = reader.open(name);
    out.push_back(decode_clip_result(
        r, clip.id,
        "journal '" + batch_.journal_path + "' section '" + name + "'"));
    r.expect_exhausted();
  }
  return out;
}

void BatchRunner::write_manifest(const std::string& path,
                                 const BatchSummary& summary) {
  CsvWriter csv(path,
                {"clip", "source", "status", "code", "stage", "termination",
                 "retries", "fallbacks", "ilt_iterations", "l2_px", "l2_nm2",
                 "pvb_nm2", "runtime_s"});
  for (const auto& c : summary.clips)
    csv.row({c.id, c.source, c.ok() ? "ok" : "failed", status_code_name(c.code),
             batch_stage_name(c.stage),
             c.has_termination ? ilt::termination_reason_name(c.termination) : "-",
             std::to_string(c.retries), std::to_string(c.fallbacks),
             std::to_string(c.ilt_iterations), format_g(c.l2_px),
             format_g(c.l2_nm2), std::to_string(c.pvb_nm2),
             format_g(c.runtime_s)});
}

}  // namespace ganopc::core
