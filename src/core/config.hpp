// Configuration for the GAN-OPC framework and reproduction-scale presets.
//
// The paper trains at 256x256 (2048nm clips, 8x8 average-pooled from 1nm
// rasters) for ~10 GPU-hours. The presets scale image sizes and iteration
// counts so the same pipeline reproduces the paper's *trends* on a CPU in
// seconds (Quick), minutes (Default) or hours (Paper).
#pragma once

#include <cstdint>
#include <string>

#include "ilt/ilt.hpp"
#include "litho/optics.hpp"

namespace ganopc::core {

struct GanOpcConfig {
  // --- geometry ---
  std::int32_t clip_nm = 2048;        ///< physical clip window (paper: 2048)
  std::int32_t litho_grid = 256;      ///< lithography simulation grid (pow2)
  std::int32_t gan_grid = 64;         ///< generator/discriminator image size (pow2)

  // --- network ---
  std::int64_t base_channels = 8;     ///< width of the first conv block

  // --- training (Algorithm 1 / 2) ---
  int batch_size = 4;                 ///< m, the mini-batch clip count
  int gan_iterations = 300;           ///< adversarial training iterations
  int pretrain_iterations = 60;       ///< ILT-guided pre-training iterations
  float lr_generator = 1e-3f;         ///< lambda for G (Adam)
  float lr_discriminator = 1e-3f;     ///< lambda for D (Adam)
  float alpha_l2 = 1.0f;              ///< alpha: weight of ||M* - M||_2^2 in l_g
  float pretrain_lr = 1e-3f;
  float d_dropout = 0.0f;             ///< dropout before D's classifier head
  bool cosine_lr = false;             ///< cosine-anneal both optimizers over
                                      ///< gan_iterations (10% warmup)

  // --- substrates ---
  litho::OpticsConfig optics;         ///< shared by litho-grid and gan-grid sims
  ilt::IltConfig ilt;                 ///< refinement / ground-truth engine config

  // --- dataset ---
  std::size_t library_size = 64;      ///< training clips (paper: 4000)
  std::uint64_t seed = 1847;

  std::int32_t litho_pixel_nm() const { return clip_nm / litho_grid; }
  std::int32_t gan_pixel_nm() const { return clip_nm / gan_grid; }
  std::int32_t pool_factor() const { return litho_grid / gan_grid; }

  void validate() const;
};

enum class ReproScale { Quick, Default, Paper };

/// Preset configurations. Quick: unit-test scale (~seconds). Default: bench
/// scale (~minutes). Paper: the publication's geometry (hours on CPU).
GanOpcConfig make_config(ReproScale scale);

/// Parse "quick" / "default" / "paper" (case-insensitive).
ReproScale parse_scale(const std::string& name);
const char* scale_name(ReproScale scale);

}  // namespace ganopc::core
