#include "core/trainer.hpp"

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/timer.hpp"
#include "geometry/bitmap_ops.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace ganopc::core {

GanOpcTrainer::GanOpcTrainer(const GanOpcConfig& config, Generator& generator,
                             Discriminator& discriminator, const Dataset& dataset,
                             const litho::LithoSim& sim, Prng& rng)
    : config_(config),
      generator_(generator),
      discriminator_(discriminator),
      dataset_(dataset),
      sim_(sim),
      rng_(rng) {
  config.validate();
  GANOPC_CHECK_MSG(dataset.size() > 0, "trainer: empty dataset");
  GANOPC_CHECK_MSG(generator.image_size() == config.gan_grid,
                   "trainer: generator size mismatch");
  g_opt_ = std::make_unique<nn::Adam>(generator_.parameters(), config.lr_generator);
  d_opt_ = std::make_unique<nn::Adam>(discriminator_.parameters(), config.lr_discriminator);
  pre_opt_ = std::make_unique<nn::Adam>(generator_.parameters(), config.pretrain_lr);
}

TrainStats GanOpcTrainer::pretrain(int iterations) {
  GANOPC_CHECK(iterations >= 0);
  TrainStats stats;
  WallTimer timer;
  const int m = config_.batch_size;
  const std::int32_t pool = config_.pool_factor();
  const std::int64_t gan_plane =
      static_cast<std::int64_t>(config_.gan_grid) * config_.gan_grid;
  generator_.set_training(true);

  for (int it = 0; it < iterations; ++it) {
    nn::Tensor targets, masks_ref;
    dataset_.sample_batch(rng_, m, targets, masks_ref);
    // M <- G(Z_t)
    const nn::Tensor masks = generator_.forward(targets);
    // For each instance: upsample, simulate, compute E, pull dE/dM back down.
    nn::Tensor grad_masks(masks.shape());
    double litho_err = 0.0;
    for (int j = 0; j < m; ++j) {
      geom::Grid mask_gan(config_.gan_grid, config_.gan_grid, config_.gan_pixel_nm());
      std::copy(masks.data() + j * gan_plane, masks.data() + (j + 1) * gan_plane,
                mask_gan.data.begin());
      const geom::Grid mask_litho = geom::upsample_bilinear(mask_gan, pool);

      // Target at litho resolution: use the example's own pooled target
      // up-threshold? The dataset stores litho targets; match by content.
      // Here we reconstruct the litho target from the GAN-resolution target
      // by nearest up-sampling of the binary pattern — the pooled target is
      // fractional at edges, so threshold at 0.5.
      geom::Grid target_gan(config_.gan_grid, config_.gan_grid, config_.gan_pixel_nm());
      std::copy(targets.data() + j * gan_plane, targets.data() + (j + 1) * gan_plane,
                target_gan.data.begin());
      geom::Grid target_litho = geom::upsample_nearest(target_gan, pool);
      geom::binarize(target_litho);

      const auto fwd = sim_.forward_relaxed(mask_litho, target_litho);
      litho_err += fwd.error;
      // dE/dM at litho res (Eq. 14 core), then through the interpolation.
      const geom::Grid grad_litho = sim_.gradient(mask_litho, target_litho);
      const geom::Grid grad_gan = geom::upsample_bilinear_adjoint(grad_litho, pool, mask_gan);
      // Mean over the mini-batch (Eq. 15's 1/m).
      for (std::int64_t i = 0; i < gan_plane; ++i)
        grad_masks[j * gan_plane + i] = grad_gan.data[i] / static_cast<float>(m);
    }
    generator_.backward(grad_masks);
    pre_opt_->step();
    stats.litho_history.push_back(static_cast<float>(litho_err / m));

    // Also record the Eq. (9) L2 to ground truth for curve comparability.
    float l2 = 0.0f;
    for (std::int64_t i = 0; i < masks.numel(); ++i) {
      const float d = masks[i] - masks_ref[i];
      l2 += d * d;
    }
    stats.l2_history.push_back(l2 / static_cast<float>(m));
    GANOPC_DEBUG("pretrain it=" << it << " E=" << stats.litho_history.back()
                                << " l2=" << stats.l2_history.back());
  }
  stats.seconds = timer.seconds();
  return stats;
}

TrainStats GanOpcTrainer::train(int iterations) {
  GANOPC_CHECK(iterations >= 0);
  TrainStats stats;
  WallTimer timer;
  const int m = config_.batch_size;
  generator_.set_training(true);
  discriminator_.set_training(true);

  nn::Tensor real_labels({static_cast<std::int64_t>(m), 1});
  real_labels.fill(1.0f);
  nn::Tensor fake_labels({static_cast<std::int64_t>(m), 1});

  const nn::LrSchedule g_schedule =
      config_.cosine_lr
          ? nn::LrSchedule::cosine(config_.lr_generator, std::max(iterations, 1),
                                   config_.lr_generator * 0.01f,
                                   std::max(iterations / 10, 1))
          : nn::LrSchedule(config_.lr_generator);
  const nn::LrSchedule d_schedule =
      config_.cosine_lr
          ? nn::LrSchedule::cosine(config_.lr_discriminator, std::max(iterations, 1),
                                   config_.lr_discriminator * 0.01f,
                                   std::max(iterations / 10, 1))
          : nn::LrSchedule(config_.lr_discriminator);

  for (int it = 0; it < iterations; ++it) {
    g_schedule.apply(*g_opt_, it);
    d_schedule.apply(*d_opt_, it);
    nn::Tensor targets, masks_ref;
    dataset_.sample_batch(rng_, m, targets, masks_ref);

    // ---- discriminator update: push D(Z_t, M*) -> 1, D(Z_t, G(Z_t)) -> 0.
    const nn::Tensor masks_fake = generator_.forward(targets);
    nn::Tensor grad_logits;
    const nn::Tensor logits_fake = discriminator_.forward(targets, masks_fake);
    const float d_loss_fake = nn::bce_with_logits_loss(logits_fake, fake_labels, grad_logits);
    discriminator_.backward_to_mask(grad_logits);  // mask grad discarded: detached G
    const nn::Tensor logits_real = discriminator_.forward(targets, masks_ref);
    const float d_loss_real = nn::bce_with_logits_loss(logits_real, real_labels, grad_logits);
    discriminator_.backward_to_mask(grad_logits);
    d_opt_->step();

    // ---- generator update: l_g = -log D(Z_t, M) + alpha ||M* - M||_2^2.
    const nn::Tensor masks = generator_.forward(targets);
    const nn::Tensor logits = discriminator_.forward(targets, masks);
    nn::Tensor grad_adv_logits;
    const float g_adv = nn::generator_adv_loss(logits, grad_adv_logits);
    nn::Tensor grad_mask_adv = discriminator_.backward_to_mask(grad_adv_logits);
    d_opt_->zero_grad();  // discard D gradients produced on G's behalf

    // Algorithm 1 line 7 uses the *un-normalized* squared L2 per instance;
    // average over the mini-batch only (Eq. 15's 1/m).
    nn::Tensor grad_mask_l2;
    const float l2_total = nn::sse_loss(masks, masks_ref, grad_mask_l2);
    grad_mask_adv.add_scaled_(grad_mask_l2, config_.alpha_l2 / static_cast<float>(m));
    generator_.backward(grad_mask_adv);
    g_opt_->step();

    // Figure 7's y-axis: mean per-instance squared L2 to the reference mask.
    stats.l2_history.push_back(l2_total / static_cast<float>(m));
    stats.g_adv_history.push_back(g_adv);
    stats.d_loss_history.push_back(d_loss_fake + d_loss_real);
    GANOPC_DEBUG("train it=" << it << " l2=" << stats.l2_history.back() << " g_adv=" << g_adv
                             << " d=" << stats.d_loss_history.back());
  }
  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace ganopc::core
