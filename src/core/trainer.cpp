#include "core/trainer.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/logging.hpp"
#include "common/timer.hpp"
#include "geometry/bitmap_ops.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "obs/ledger.hpp"
#include "obs/trace.hpp"

namespace ganopc::core {

namespace {

bool tensor_finite(const nn::Tensor& t) {
  for (std::int64_t i = 0; i < t.numel(); ++i)
    if (!std::isfinite(t[i])) return false;
  return true;
}

bool grads_finite(const std::vector<nn::Param>& params) {
  for (const auto& p : params)
    if (p.grad && !tensor_finite(*p.grad)) return false;
  return true;
}

std::vector<nn::Tensor> copy_values(const std::vector<nn::Param>& params) {
  std::vector<nn::Tensor> out;
  out.reserve(params.size());
  for (const auto& p : params) out.push_back(*p.value);
  return out;
}

void restore_values(const std::vector<nn::Param>& params,
                    const std::vector<nn::Tensor>& values) {
  GANOPC_CHECK(params.size() == values.size());
  for (std::size_t i = 0; i < params.size(); ++i) *params[i].value = values[i];
}

}  // namespace

/// Everything a retried step must rewind: weights, batch-norm buffers,
/// already-stepped Adam moments (adversarial phase only — D steps before
/// G's guard fires) and the Prng stream position.
struct GanOpcTrainer::StepSnapshot {
  std::vector<nn::Tensor> gen_values, gen_buffers;
  std::vector<nn::Tensor> disc_values, disc_buffers;
  std::int64_t g_t = 0, d_t = 0;
  std::vector<nn::Tensor> g_m, g_v, d_m, d_v;
  Prng::State rng{};
  bool has_discriminator = false;
};

GanOpcTrainer::GanOpcTrainer(const GanOpcConfig& config, Generator& generator,
                             Discriminator& discriminator, const Dataset& dataset,
                             const litho::LithoSim& sim, Prng& rng)
    : config_(config),
      generator_(generator),
      discriminator_(discriminator),
      dataset_(dataset),
      sim_(sim),
      rng_(rng) {
  config.validate();
  GANOPC_CHECK_MSG(dataset.size() > 0, "trainer: empty dataset");
  GANOPC_CHECK_MSG(generator.image_size() == config.gan_grid,
                   "trainer: generator size mismatch");
  g_opt_ = std::make_unique<nn::Adam>(generator_.parameters(), config.lr_generator);
  d_opt_ = std::make_unique<nn::Adam>(discriminator_.parameters(), config.lr_discriminator);
  pre_opt_ = std::make_unique<nn::Adam>(generator_.parameters(), config.pretrain_lr);
}

GanOpcTrainer::StepSnapshot GanOpcTrainer::capture_step_state(
    bool include_discriminator) const {
  StepSnapshot snap;
  snap.gen_values = copy_values(generator_.parameters());
  snap.gen_buffers = copy_values(generator_.buffers());
  snap.rng = rng_.state();
  if (include_discriminator) {
    snap.has_discriminator = true;
    snap.disc_values = copy_values(discriminator_.parameters());
    snap.disc_buffers = copy_values(discriminator_.buffers());
    snap.g_t = g_opt_->step_count();
    snap.g_m = g_opt_->first_moments();
    snap.g_v = g_opt_->second_moments();
    snap.d_t = d_opt_->step_count();
    snap.d_m = d_opt_->first_moments();
    snap.d_v = d_opt_->second_moments();
  }
  return snap;
}

void GanOpcTrainer::rollback_step(const StepSnapshot& snapshot, float lr_backoff,
                                  TrainStats& stats, int iteration, int attempts,
                                  const char* what) {
  restore_values(generator_.parameters(), snapshot.gen_values);
  restore_values(generator_.buffers(), snapshot.gen_buffers);
  generator_.net().zero_grad();
  if (snapshot.has_discriminator) {
    restore_values(discriminator_.parameters(), snapshot.disc_values);
    restore_values(discriminator_.buffers(), snapshot.disc_buffers);
    discriminator_.net().zero_grad();
    g_opt_->restore_state(snapshot.g_t, snapshot.g_m, snapshot.g_v);
    d_opt_->restore_state(snapshot.d_t, snapshot.d_m, snapshot.d_v);
  }
  rng_.set_state(snapshot.rng);
  lr_scale_ *= lr_backoff;
  ++stats.divergence_rollbacks;
  if (obs::metrics_enabled()) obs::counter("trainer.rollbacks").inc();
  if (obs::ledger_enabled()) {
    obs::LedgerRecord rec("rollback");
    rec.field("phase", phase_ == TrainPhase::Pretrain ? "pretrain" : "adversarial")
        .field("iter", iteration)
        .field("attempt", attempts)
        .field("what", what)
        .field("lr_scale", static_cast<double>(lr_scale_));
    obs::ledger_emit(rec);
    obs::flight_dump("trainer.rollback");
  }
  GANOPC_WARN("trainer: non-finite " << what << " at iteration " << iteration
                                     << "; rolled back (attempt " << attempts
                                     << "), lr scale now " << lr_scale_);
}

TrainStats GanOpcTrainer::pretrain(int iterations, const TrainRunOptions& options) {
  GANOPC_CHECK(iterations >= 0);
  GANOPC_CHECK(options.checkpoint_every >= 0 && options.max_divergence_retries >= 0);
  GANOPC_CHECK(options.lr_backoff > 0.0f && options.lr_backoff <= 1.0f);
  int start = 0;
  if (resume_pending_) {
    GANOPC_CHECK_MSG(phase_ != TrainPhase::Adversarial,
                     "resumed checkpoint is in the adversarial phase; call train()");
    GANOPC_CHECK_MSG(next_iteration_ <= iterations,
                     "resumed pretrain checkpoint is at iteration "
                         << next_iteration_ << ", beyond the requested " << iterations);
    start = next_iteration_;
    resume_pending_ = false;
  } else {
    phase_stats_ = TrainStats{};
  }
  phase_ = TrainPhase::Pretrain;
  total_iterations_ = iterations;
  next_iteration_ = start;

  TrainStats& stats = phase_stats_;
  WallTimer timer;
  const int m = config_.batch_size;
  const std::int32_t pool = config_.pool_factor();
  const std::int64_t gan_plane =
      static_cast<std::int64_t>(config_.gan_grid) * config_.gan_grid;
  generator_.set_training(true);
  const bool guard = options.max_divergence_retries > 0;

  for (int it = start; it < iterations; ++it) {
    GANOPC_OBS_SPAN("trainer.pretrain.step");
    if (options.stop && options.stop->load()) {
      stats.interrupted = true;
      stats.seconds += timer.seconds();
      if (!options.checkpoint_path.empty()) {
        save_checkpoint(options.checkpoint_path);
        GANOPC_INFO("pretrain interrupted at iteration " << it << "; checkpoint flushed to "
                                                         << options.checkpoint_path);
      }
      return stats;
    }
    next_iteration_ = it;
    const StepSnapshot snapshot = guard ? capture_step_state(false) : StepSnapshot{};
    int attempts = 0;
    for (;;) {
      pre_opt_->set_learning_rate(config_.pretrain_lr * lr_scale_);
      nn::Tensor targets, masks_ref;
      dataset_.sample_batch(rng_, m, targets, masks_ref);
      // M <- G(Z_t)
      const nn::Tensor masks = generator_.forward(targets);
      // For each instance: upsample, simulate, compute E, pull dE/dM back down.
      nn::Tensor grad_masks(masks.shape());
      double litho_err = 0.0;
      for (int j = 0; j < m; ++j) {
        geom::Grid mask_gan(config_.gan_grid, config_.gan_grid, config_.gan_pixel_nm());
        std::copy(masks.data() + j * gan_plane, masks.data() + (j + 1) * gan_plane,
                  mask_gan.data.begin());
        const geom::Grid mask_litho = geom::upsample_bilinear(mask_gan, pool);

        // Target at litho resolution: use the example's own pooled target
        // up-threshold? The dataset stores litho targets; match by content.
        // Here we reconstruct the litho target from the GAN-resolution target
        // by nearest up-sampling of the binary pattern — the pooled target is
        // fractional at edges, so threshold at 0.5.
        geom::Grid target_gan(config_.gan_grid, config_.gan_grid, config_.gan_pixel_nm());
        std::copy(targets.data() + j * gan_plane, targets.data() + (j + 1) * gan_plane,
                  target_gan.data.begin());
        geom::Grid target_litho = geom::upsample_nearest(target_gan, pool);
        geom::binarize(target_litho);

        const auto fwd = sim_.forward_relaxed(mask_litho, target_litho);
        litho_err += fwd.error;
        // dE/dM at litho res (Eq. 14 core), then through the interpolation.
        const geom::Grid grad_litho = sim_.gradient(mask_litho, target_litho);
        const geom::Grid grad_gan = geom::upsample_bilinear_adjoint(grad_litho, pool, mask_gan);
        // Mean over the mini-batch (Eq. 15's 1/m).
        for (std::int64_t i = 0; i < gan_plane; ++i)
          grad_masks[j * gan_plane + i] = grad_gan.data[i] / static_cast<float>(m);
      }
      if (GANOPC_FAILPOINT("trainer.pretrain_grad"))
        grad_masks[0] = std::numeric_limits<float>::quiet_NaN();

      bool bad = guard && (!std::isfinite(litho_err) || !tensor_finite(grad_masks));
      const char* what = "litho gradient";
      if (!bad) {
        generator_.backward(grad_masks);
        if (guard && !grads_finite(generator_.parameters())) {
          bad = true;
          what = "parameter gradient";
        }
      }
      if (bad) {
        ++attempts;
        GANOPC_CHECK_MSG(attempts <= options.max_divergence_retries,
                         "pretrain diverged: non-finite " << what << " at iteration " << it
                                                          << " after " << attempts
                                                          << " rollbacks");
        rollback_step(snapshot, options.lr_backoff, stats, it, attempts, what);
        continue;
      }
      pre_opt_->step();
      stats.litho_history.push_back(static_cast<float>(litho_err / m));

      // Also record the Eq. (9) L2 to ground truth for curve comparability.
      float l2 = 0.0f;
      for (std::int64_t i = 0; i < masks.numel(); ++i) {
        const float d = masks[i] - masks_ref[i];
        l2 += d * d;
      }
      stats.l2_history.push_back(l2 / static_cast<float>(m));
      if (obs::ledger_enabled()) {
        obs::LedgerRecord rec("train_step");
        rec.field("phase", "pretrain")
            .field("iter", it)
            .field("loss", static_cast<double>(stats.litho_history.back()))
            .field("l2", static_cast<double>(stats.l2_history.back()))
            .field("lr", static_cast<double>(config_.pretrain_lr * lr_scale_))
            .field("wall_s", timer.seconds());
        obs::ledger_emit(rec);
      }
      GANOPC_DEBUG("pretrain it=" << it << " E=" << stats.litho_history.back()
                                  << " l2=" << stats.l2_history.back());
      break;
    }
    next_iteration_ = it + 1;
    if (!options.checkpoint_path.empty() && options.checkpoint_every > 0 &&
        (it + 1) % options.checkpoint_every == 0 && it + 1 < iterations)
      save_checkpoint(options.checkpoint_path);
  }
  stats.seconds += timer.seconds();
  next_iteration_ = iterations;
  if (!options.checkpoint_path.empty()) save_checkpoint(options.checkpoint_path);
  return stats;
}

TrainStats GanOpcTrainer::train(int iterations, const TrainRunOptions& options) {
  GANOPC_CHECK(iterations >= 0);
  GANOPC_CHECK(options.checkpoint_every >= 0 && options.max_divergence_retries >= 0);
  GANOPC_CHECK(options.lr_backoff > 0.0f && options.lr_backoff <= 1.0f);
  int start = 0;
  if (resume_pending_) {
    if (phase_ == TrainPhase::Pretrain) {
      GANOPC_CHECK_MSG(next_iteration_ >= total_iterations_,
                       "resumed checkpoint is mid-pretrain (iteration "
                           << next_iteration_ << "/" << total_iterations_
                           << "); run pretrain() first");
      phase_stats_ = TrainStats{};  // pretrain complete; adversarial starts fresh
    } else {
      GANOPC_CHECK_MSG(next_iteration_ <= iterations,
                       "resumed adversarial checkpoint is at iteration "
                           << next_iteration_ << ", beyond the requested " << iterations);
      if (config_.cosine_lr && total_iterations_ != iterations)
        GANOPC_WARN("train: resumed with " << iterations << " total iterations but the "
                    << "checkpoint planned " << total_iterations_
                    << "; the cosine schedule will not match the original run");
      start = next_iteration_;
    }
    resume_pending_ = false;
  } else {
    phase_stats_ = TrainStats{};
  }
  phase_ = TrainPhase::Adversarial;
  total_iterations_ = iterations;
  next_iteration_ = start;

  TrainStats& stats = phase_stats_;
  WallTimer timer;
  const int m = config_.batch_size;
  generator_.set_training(true);
  discriminator_.set_training(true);
  const bool guard = options.max_divergence_retries > 0;

  nn::Tensor real_labels({static_cast<std::int64_t>(m), 1});
  real_labels.fill(1.0f);
  nn::Tensor fake_labels({static_cast<std::int64_t>(m), 1});

  const nn::LrSchedule g_schedule =
      config_.cosine_lr
          ? nn::LrSchedule::cosine(config_.lr_generator, std::max(iterations, 1),
                                   config_.lr_generator * 0.01f,
                                   std::max(iterations / 10, 1))
          : nn::LrSchedule(config_.lr_generator);
  const nn::LrSchedule d_schedule =
      config_.cosine_lr
          ? nn::LrSchedule::cosine(config_.lr_discriminator, std::max(iterations, 1),
                                   config_.lr_discriminator * 0.01f,
                                   std::max(iterations / 10, 1))
          : nn::LrSchedule(config_.lr_discriminator);

  for (int it = start; it < iterations; ++it) {
    GANOPC_OBS_SPAN("trainer.train.step");
    if (options.stop && options.stop->load()) {
      stats.interrupted = true;
      stats.seconds += timer.seconds();
      if (!options.checkpoint_path.empty()) {
        save_checkpoint(options.checkpoint_path);
        GANOPC_INFO("train interrupted at iteration " << it << "; checkpoint flushed to "
                                                      << options.checkpoint_path);
      }
      return stats;
    }
    next_iteration_ = it;
    const StepSnapshot snapshot = guard ? capture_step_state(true) : StepSnapshot{};
    int attempts = 0;
    for (;;) {
      g_opt_->set_learning_rate(g_schedule.at(it) * lr_scale_);
      d_opt_->set_learning_rate(d_schedule.at(it) * lr_scale_);
      nn::Tensor targets, masks_ref;
      dataset_.sample_batch(rng_, m, targets, masks_ref);

      // ---- discriminator update: push D(Z_t, M*) -> 1, D(Z_t, G(Z_t)) -> 0.
      const nn::Tensor masks_fake = generator_.forward(targets);
      nn::Tensor grad_logits;
      const nn::Tensor logits_fake = discriminator_.forward(targets, masks_fake);
      const float d_loss_fake = nn::bce_with_logits_loss(logits_fake, fake_labels, grad_logits);
      discriminator_.backward_to_mask(grad_logits);  // mask grad discarded: detached G
      const nn::Tensor logits_real = discriminator_.forward(targets, masks_ref);
      const float d_loss_real = nn::bce_with_logits_loss(logits_real, real_labels, grad_logits);
      discriminator_.backward_to_mask(grad_logits);
      if (guard && (!std::isfinite(d_loss_fake) || !std::isfinite(d_loss_real) ||
                    !grads_finite(discriminator_.parameters()))) {
        ++attempts;
        GANOPC_CHECK_MSG(attempts <= options.max_divergence_retries,
                         "train diverged: non-finite discriminator loss at iteration "
                             << it << " after " << attempts << " rollbacks");
        rollback_step(snapshot, options.lr_backoff, stats, it, attempts,
                      "discriminator loss");
        continue;
      }
      d_opt_->step();

      // ---- generator update: l_g = -log D(Z_t, M) + alpha ||M* - M||_2^2.
      const nn::Tensor masks = generator_.forward(targets);
      const nn::Tensor logits = discriminator_.forward(targets, masks);
      nn::Tensor grad_adv_logits;
      const float g_adv = nn::generator_adv_loss(logits, grad_adv_logits);
      nn::Tensor grad_mask_adv = discriminator_.backward_to_mask(grad_adv_logits);
      d_opt_->zero_grad();  // discard D gradients produced on G's behalf

      // Algorithm 1 line 7 uses the *un-normalized* squared L2 per instance;
      // average over the mini-batch only (Eq. 15's 1/m).
      nn::Tensor grad_mask_l2;
      const float l2_total = nn::sse_loss(masks, masks_ref, grad_mask_l2);
      grad_mask_adv.add_scaled_(grad_mask_l2, config_.alpha_l2 / static_cast<float>(m));
      if (GANOPC_FAILPOINT("trainer.train_grad"))
        grad_mask_adv[0] = std::numeric_limits<float>::quiet_NaN();
      if (guard && (!std::isfinite(g_adv) || !std::isfinite(l2_total) ||
                    !tensor_finite(grad_mask_adv))) {
        ++attempts;
        GANOPC_CHECK_MSG(attempts <= options.max_divergence_retries,
                         "train diverged: non-finite generator loss/gradient at iteration "
                             << it << " after " << attempts << " rollbacks");
        rollback_step(snapshot, options.lr_backoff, stats, it, attempts,
                      "generator loss/gradient");
        continue;
      }
      generator_.backward(grad_mask_adv);
      g_opt_->step();

      // Figure 7's y-axis: mean per-instance squared L2 to the reference mask.
      stats.l2_history.push_back(l2_total / static_cast<float>(m));
      stats.g_adv_history.push_back(g_adv);
      stats.d_loss_history.push_back(d_loss_fake + d_loss_real);
      if (obs::ledger_enabled()) {
        obs::LedgerRecord rec("train_step");
        rec.field("phase", "adversarial")
            .field("iter", it)
            .field("l2", static_cast<double>(stats.l2_history.back()))
            .field("g_adv", static_cast<double>(g_adv))
            .field("d_loss", static_cast<double>(stats.d_loss_history.back()))
            .field("lr", static_cast<double>(g_schedule.at(it) * lr_scale_))
            .field("wall_s", timer.seconds());
        obs::ledger_emit(rec);
      }
      GANOPC_DEBUG("train it=" << it << " l2=" << stats.l2_history.back() << " g_adv=" << g_adv
                               << " d=" << stats.d_loss_history.back());
      break;
    }
    next_iteration_ = it + 1;
    if (!options.checkpoint_path.empty() && options.checkpoint_every > 0 &&
        (it + 1) % options.checkpoint_every == 0 && it + 1 < iterations)
      save_checkpoint(options.checkpoint_path);
  }
  stats.seconds += timer.seconds();
  next_iteration_ = iterations;
  if (!options.checkpoint_path.empty()) save_checkpoint(options.checkpoint_path);
  return stats;
}

}  // namespace ganopc::core
