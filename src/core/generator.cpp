#include "core/generator.hpp"

#include "common/error.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/init.hpp"
#include "nn/layers.hpp"

namespace ganopc::core {

namespace {

std::unique_ptr<nn::Sequential> make_autoencoder(std::int64_t c) {
  auto net = std::make_unique<nn::Sequential>();
  // Encoder: hierarchical abstraction, spatial size /8.
  net->emplace<nn::Conv2d>(1, c, 3, 2, 1);
  net->emplace<nn::BatchNorm2d>(c);
  net->emplace<nn::LeakyReLU>(0.2f);
  net->emplace<nn::Conv2d>(c, 2 * c, 3, 2, 1);
  net->emplace<nn::BatchNorm2d>(2 * c);
  net->emplace<nn::LeakyReLU>(0.2f);
  net->emplace<nn::Conv2d>(2 * c, 4 * c, 3, 2, 1);
  net->emplace<nn::BatchNorm2d>(4 * c);
  net->emplace<nn::LeakyReLU>(0.2f);
  // Decoder: mirrored up-sampling back to full resolution.
  net->emplace<nn::ConvTranspose2d>(4 * c, 2 * c, 4, 2, 1);
  net->emplace<nn::BatchNorm2d>(2 * c);
  net->emplace<nn::ReLU>();
  net->emplace<nn::ConvTranspose2d>(2 * c, c, 4, 2, 1);
  net->emplace<nn::BatchNorm2d>(c);
  net->emplace<nn::ReLU>();
  net->emplace<nn::ConvTranspose2d>(c, 1, 4, 2, 1);
  net->emplace<nn::Sigmoid>();
  return net;
}

}  // namespace

// ------------------------------------------------------------ UNetBackbone

UNetBackbone::UNetBackbone(std::int64_t image_size, std::int64_t base_channels,
                           Prng& rng)
    : channels_(base_channels) {
  GANOPC_CHECK_MSG(image_size % 8 == 0, "UNet image size must divide by 8");
  const std::int64_t c = base_channels;
  enc1_.emplace<nn::Conv2d>(1, c, 3, 2, 1);
  enc1_.emplace<nn::BatchNorm2d>(c);
  enc1_.emplace<nn::LeakyReLU>(0.2f);
  enc2_.emplace<nn::Conv2d>(c, 2 * c, 3, 2, 1);
  enc2_.emplace<nn::BatchNorm2d>(2 * c);
  enc2_.emplace<nn::LeakyReLU>(0.2f);
  enc3_.emplace<nn::Conv2d>(2 * c, 4 * c, 3, 2, 1);
  enc3_.emplace<nn::BatchNorm2d>(4 * c);
  enc3_.emplace<nn::LeakyReLU>(0.2f);
  dec3_.emplace<nn::ConvTranspose2d>(4 * c, 2 * c, 4, 2, 1);
  dec3_.emplace<nn::BatchNorm2d>(2 * c);
  dec3_.emplace<nn::ReLU>();
  // Inputs are concatenated with the matching encoder activation.
  dec2_.emplace<nn::ConvTranspose2d>(4 * c, c, 4, 2, 1);
  dec2_.emplace<nn::BatchNorm2d>(c);
  dec2_.emplace<nn::ReLU>();
  dec1_.emplace<nn::ConvTranspose2d>(2 * c, 1, 4, 2, 1);
  dec1_.emplace<nn::Sigmoid>();
  for (nn::Sequential* block : {&enc1_, &enc2_, &enc3_, &dec3_, &dec2_, &dec1_})
    nn::init_network(*block, rng);
}

nn::Tensor UNetBackbone::forward(const nn::Tensor& input) {
  const nn::Tensor e1 = enc1_.forward(input);
  const nn::Tensor e2 = enc2_.forward(e1);
  const nn::Tensor e3 = enc3_.forward(e2);
  const nn::Tensor d3 = dec3_.forward(e3);
  const nn::Tensor d2 = dec2_.forward(nn::concat_channels(d3, e2));
  return dec1_.forward(nn::concat_channels(d2, e1));
}

nn::Tensor UNetBackbone::backward(const nn::Tensor& grad_output) {
  const std::int64_t c = channels_;
  nn::Tensor g_cat2 = dec1_.backward(grad_output);
  nn::Tensor g_d2, g_e1_skip;
  nn::split_channels(g_cat2, c, g_d2, g_e1_skip);
  nn::Tensor g_cat3 = dec2_.backward(g_d2);
  nn::Tensor g_d3, g_e2_skip;
  nn::split_channels(g_cat3, 2 * c, g_d3, g_e2_skip);
  nn::Tensor g_e3 = dec3_.backward(g_d3);
  nn::Tensor g_e2 = enc3_.backward(g_e3);
  g_e2.add_(g_e2_skip);
  nn::Tensor g_e1 = enc2_.backward(g_e2);
  g_e1.add_(g_e1_skip);
  return enc1_.backward(g_e1);
}

std::vector<nn::Param> UNetBackbone::parameters() {
  std::vector<nn::Param> out;
  const std::pair<const char*, nn::Sequential*> blocks[] = {
      {"enc1", &enc1_}, {"enc2", &enc2_}, {"enc3", &enc3_},
      {"dec3", &dec3_}, {"dec2", &dec2_}, {"dec1", &dec1_}};
  for (const auto& [prefix, block] : blocks) {
    for (auto p : block->parameters()) {
      p.name = std::string(prefix) + "." + p.name;
      out.push_back(p);
    }
  }
  return out;
}

std::vector<nn::Param> UNetBackbone::buffers() {
  std::vector<nn::Param> out;
  const std::pair<const char*, nn::Sequential*> blocks[] = {
      {"enc1", &enc1_}, {"enc2", &enc2_}, {"enc3", &enc3_},
      {"dec3", &dec3_}, {"dec2", &dec2_}, {"dec1", &dec1_}};
  for (const auto& [prefix, block] : blocks) {
    for (auto b : block->buffers()) {
      b.name = std::string(prefix) + "." + b.name;
      out.push_back(b);
    }
  }
  return out;
}

void UNetBackbone::on_mode_change() {
  for (nn::Sequential* block : {&enc1_, &enc2_, &enc3_, &dec3_, &dec2_, &dec1_})
    block->set_training(training_);
}

// ---------------------------------------------------------------- Generator

Generator::Generator(std::int64_t image_size, std::int64_t base_channels, Prng& rng,
                     GeneratorArch arch)
    : image_size_(image_size), arch_(arch) {
  GANOPC_CHECK_MSG(image_size % 8 == 0, "generator image size must divide by 8");
  GANOPC_CHECK(base_channels > 0);
  if (arch == GeneratorArch::UNet) {
    net_ = std::make_unique<UNetBackbone>(image_size, base_channels, rng);
  } else {
    auto net = make_autoencoder(base_channels);
    nn::init_network(*net, rng);
    net_ = std::move(net);
  }
}

nn::Tensor Generator::forward(const nn::Tensor& targets) {
  GANOPC_CHECK_MSG(targets.dim() == 4 && targets.shape(1) == 1 &&
                       targets.shape(2) == image_size_ && targets.shape(3) == image_size_,
                   "generator: bad input " << targets.shape_str());
  return net_->forward(targets);
}

void Generator::backward(const nn::Tensor& grad_masks) { net_->backward(grad_masks); }

geom::Grid Generator::infer(const geom::Grid& target) {
  GANOPC_CHECK_MSG(target.rows == image_size_ && target.cols == image_size_,
                   "generator: grid size mismatch");
  const bool was_training = net_->training();
  net_->set_training(false);
  const nn::Tensor out = forward(grid_to_tensor(target));
  if (was_training) net_->set_training(true);
  return tensor_to_grid(out, target);
}

nn::Tensor grid_to_tensor(const geom::Grid& grid) {
  nn::Tensor t({1, 1, grid.rows, grid.cols});
  std::copy(grid.data.begin(), grid.data.end(), t.data());
  return t;
}

geom::Grid tensor_to_grid(const nn::Tensor& tensor, const geom::Grid& like) {
  GANOPC_CHECK(tensor.numel() == static_cast<std::int64_t>(like.size()));
  geom::Grid g(like.rows, like.cols, like.pixel_nm, like.origin_x, like.origin_y);
  std::copy(tensor.data(), tensor.data() + tensor.numel(), g.data.begin());
  return g;
}

}  // namespace ganopc::core
