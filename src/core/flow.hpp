// The end-to-end mask optimization flows compared in Table 2.
//
//   run()          — Figure 6: generator inference (at GAN resolution, with
//                    the 8x8-pool-in / interpolate-out wrapping of §4)
//                    followed by ILT refinement from that quasi-optimal mask.
//   run_ilt_only() — the conventional ILT flow of [7]: refinement starts
//                    from the target pattern itself.
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "core/generator.hpp"
#include "geometry/grid.hpp"
#include "geometry/layout.hpp"
#include "ilt/ilt.hpp"
#include "litho/lithosim.hpp"

namespace ganopc::core {

struct FlowResult {
  geom::Grid target;         ///< binary target at litho resolution
  geom::Grid mask;           ///< final optimized mask (binary)
  geom::Grid wafer;          ///< nominal print of the final mask
  double l2_px = 0.0;        ///< squared L2 (pixels) under nominal condition
  double l2_nm2 = 0.0;       ///< scaled by pixel area (Table 2 units)
  std::int64_t pvb_nm2 = 0;  ///< +/-2% dose PV band area
  double generator_seconds = 0.0;
  double ilt_seconds = 0.0;
  int ilt_iterations = 0;
  double total_seconds() const { return generator_seconds + ilt_seconds; }
};

class GanOpcFlow {
 public:
  /// `sim` must run at config.litho_grid. The generator may be null for a
  /// baseline-only flow object.
  GanOpcFlow(const GanOpcConfig& config, Generator* generator, const litho::LithoSim& sim);

  /// Full GAN-OPC flow on one clip (requires a generator).
  FlowResult run(const geom::Layout& clip) const;

  /// Conventional ILT from the target pattern (the paper's [7] baseline).
  FlowResult run_ilt_only(const geom::Layout& clip) const;

  /// Evaluate an externally produced mask (utility for tests/benches).
  FlowResult evaluate_mask(const geom::Grid& target, const geom::Grid& mask) const;

 private:
  FlowResult refine_and_score(const geom::Grid& target, const geom::Grid& initial_mask,
                              double generator_seconds) const;

  const GanOpcConfig& config_;
  Generator* generator_;
  const litho::LithoSim& sim_;
  ilt::IltEngine engine_;
};

}  // namespace ganopc::core
