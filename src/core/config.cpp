#include "core/config.hpp"

#include <algorithm>
#include <cctype>

#include "common/error.hpp"
#include "fft/fft.hpp"

namespace ganopc::core {

void GanOpcConfig::validate() const {
  GANOPC_CHECK_MSG(fft::is_pow2(static_cast<std::size_t>(litho_grid)) &&
                       fft::is_pow2(static_cast<std::size_t>(gan_grid)),
                   "grids must be powers of two");
  GANOPC_CHECK_MSG(litho_grid % gan_grid == 0, "litho grid must be a multiple of gan grid");
  GANOPC_CHECK_MSG(clip_nm % litho_grid == 0, "clip must divide evenly into litho pixels");
  GANOPC_CHECK_MSG(gan_grid % 8 == 0, "gan grid must divide by 8 (three stride-2 stages)");
  GANOPC_CHECK(base_channels > 0 && batch_size > 0);
  GANOPC_CHECK(gan_iterations >= 0 && pretrain_iterations >= 0);
  GANOPC_CHECK(lr_generator > 0 && lr_discriminator > 0 && pretrain_lr > 0);
  GANOPC_CHECK(alpha_l2 >= 0);
  GANOPC_CHECK(d_dropout >= 0.0f && d_dropout < 1.0f);
  GANOPC_CHECK(library_size > 0);
  GANOPC_CHECK_MSG(optics.valid(), "invalid optics");
}

GanOpcConfig make_config(ReproScale scale) {
  GanOpcConfig cfg;
  switch (scale) {
    case ReproScale::Quick:
      cfg.litho_grid = 128;
      cfg.gan_grid = 32;
      cfg.base_channels = 4;
      cfg.library_size = 8;
      cfg.batch_size = 2;
      cfg.gan_iterations = 30;
      cfg.pretrain_iterations = 8;
      cfg.ilt.max_iterations = 60;
      cfg.ilt.check_every = 5;
      break;
    case ReproScale::Default:
      cfg.litho_grid = 256;
      cfg.gan_grid = 64;
      cfg.base_channels = 8;
      cfg.library_size = 64;
      cfg.batch_size = 4;
      cfg.gan_iterations = 300;
      cfg.pretrain_iterations = 60;
      cfg.ilt.max_iterations = 300;
      break;
    case ReproScale::Paper:
      cfg.litho_grid = 2048;  // 1nm pixels as in the contest raster
      cfg.gan_grid = 256;     // the paper's 8x8-pooled GAN resolution
      cfg.base_channels = 16;
      cfg.library_size = 4000;
      cfg.batch_size = 16;
      cfg.gan_iterations = 10000;
      cfg.pretrain_iterations = 1000;
      cfg.ilt.max_iterations = 1000;
      break;
  }
  cfg.validate();
  return cfg;
}

ReproScale parse_scale(const std::string& name) {
  std::string s = name;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (s == "quick") return ReproScale::Quick;
  if (s == "default") return ReproScale::Default;
  if (s == "paper") return ReproScale::Paper;
  GANOPC_CHECK_MSG(false, "unknown scale '" << name << "' (quick|default|paper)");
}

const char* scale_name(ReproScale scale) {
  switch (scale) {
    case ReproScale::Quick: return "quick";
    case ReproScale::Default: return "default";
    case ReproScale::Paper: return "paper";
  }
  return "?";
}

}  // namespace ganopc::core
