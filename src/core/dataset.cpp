#include "core/dataset.hpp"

#include <algorithm>
#include <fstream>
#include <numeric>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "geometry/bitmap_ops.hpp"
#include "geometry/raster.hpp"
#include "layout/synthesizer.hpp"

namespace ganopc::core {

Dataset Dataset::generate(const GanOpcConfig& config, const litho::LithoSim& sim) {
  config.validate();
  GANOPC_CHECK_MSG(sim.grid_size() == config.litho_grid,
                   "dataset: simulator grid does not match config");
  layout::SynthesisConfig synth;
  synth.clip_nm = config.clip_nm;
  const auto clips = layout::synthesize_library(synth, config.library_size, config.seed);

  Dataset ds;
  ds.examples_.resize(clips.size());
  std::vector<geom::Grid> ref_masks(clips.size());
  const ilt::IltEngine engine(sim, config.ilt);
  const std::int32_t pool = config.pool_factor();
  parallel_for(0, clips.size(), [&](std::size_t i) {
    TrainingExample ex;
    ex.target_litho = geom::rasterize(clips[i], config.litho_pixel_nm(), /*threshold=*/true);
    ilt::IltResult ref = engine.optimize(ex.target_litho);
    ex.target_gan = geom::downsample_avg(ex.target_litho, pool);
    ex.mask_gan = geom::downsample_avg(ref.mask_relaxed, pool);
    ref_masks[i] = std::move(ref.mask);
    ds.examples_[i] = std::move(ex);
  }, /*serial_threshold=*/1);
  // Audit the shipped ground truth through the batched litho path: the mean
  // print error of the ILT masks bounds the label quality the GAN trains on.
  const std::vector<geom::Grid> prints = sim.simulate_batch(ref_masks);
  double total_l2 = 0.0;
  for (std::size_t i = 0; i < prints.size(); ++i)
    total_l2 += geom::squared_l2(prints[i], ds.examples_[i].target_litho);
  GANOPC_INFO("dataset: generated " << ds.size() << " examples (litho "
                                    << config.litho_grid << ", gan " << config.gan_grid
                                    << "), mean ground-truth L2 "
                                    << (prints.empty() ? 0.0 : total_l2 / prints.size())
                                    << " px");
  return ds;
}

namespace {

constexpr char kDatasetMagic[8] = {'G', 'O', 'P', 'C', 'D', 'S', 'E', 'T'};

void write_grid(std::ofstream& out, const geom::Grid& g) {
  const std::int32_t header[5] = {g.rows, g.cols, g.pixel_nm, g.origin_x, g.origin_y};
  out.write(reinterpret_cast<const char*>(header), sizeof header);
  out.write(reinterpret_cast<const char*>(g.data.data()),
            static_cast<std::streamsize>(g.data.size() * sizeof(float)));
}

geom::Grid read_grid(std::ifstream& in) {
  std::int32_t header[5];
  in.read(reinterpret_cast<char*>(header), sizeof header);
  GANOPC_CHECK_MSG(in.good() && header[0] > 0 && header[1] > 0, "corrupt dataset grid");
  geom::Grid g(header[0], header[1], header[2], header[3], header[4]);
  in.read(reinterpret_cast<char*>(g.data.data()),
          static_cast<std::streamsize>(g.data.size() * sizeof(float)));
  GANOPC_CHECK_MSG(in.good(), "truncated dataset grid");
  return g;
}

}  // namespace

void Dataset::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  GANOPC_CHECK_MSG(out.good(), "cannot open " << path);
  out.write(kDatasetMagic, sizeof kDatasetMagic);
  const auto count = static_cast<std::uint64_t>(examples_.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  for (const auto& ex : examples_) {
    write_grid(out, ex.target_litho);
    write_grid(out, ex.target_gan);
    write_grid(out, ex.mask_gan);
  }
  GANOPC_CHECK_MSG(out.good(), "write failed: " << path);
}

Dataset Dataset::load(const std::string& path, const GanOpcConfig& config) {
  std::ifstream in(path, std::ios::binary);
  GANOPC_CHECK_MSG(in.good(), "cannot open " << path);
  char magic[8];
  in.read(magic, sizeof magic);
  GANOPC_CHECK_MSG(std::equal(magic, magic + 8, kDatasetMagic), "bad dataset magic");
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  Dataset ds;
  ds.examples_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TrainingExample ex;
    ex.target_litho = read_grid(in);
    ex.target_gan = read_grid(in);
    ex.mask_gan = read_grid(in);
    GANOPC_CHECK_MSG(ex.target_litho.rows == config.litho_grid &&
                         ex.target_gan.rows == config.gan_grid,
                     "dataset " << path << " does not match config geometry");
    ds.examples_.push_back(std::move(ex));
  }
  return ds;
}

namespace {

geom::Grid flip_h(const geom::Grid& g) {
  geom::Grid out = g;
  for (std::int32_t r = 0; r < g.rows; ++r)
    for (std::int32_t c = 0; c < g.cols; ++c) out.at(r, g.cols - 1 - c) = g.at(r, c);
  return out;
}

geom::Grid flip_v(const geom::Grid& g) {
  geom::Grid out = g;
  for (std::int32_t r = 0; r < g.rows; ++r)
    for (std::int32_t c = 0; c < g.cols; ++c) out.at(g.rows - 1 - r, c) = g.at(r, c);
  return out;
}

geom::Grid transpose(const geom::Grid& g) {
  geom::Grid out(g.cols, g.rows, g.pixel_nm, g.origin_y, g.origin_x);
  for (std::int32_t r = 0; r < g.rows; ++r)
    for (std::int32_t c = 0; c < g.cols; ++c) out.at(c, r) = g.at(r, c);
  return out;
}

}  // namespace

void Dataset::augment_symmetries() {
  const std::size_t base = examples_.size();
  examples_.reserve(base * 4);
  for (std::size_t i = 0; i < base; ++i) {
    const TrainingExample& ex = examples_[i];
    for (auto* op : {&flip_h, &flip_v, &transpose}) {
      TrainingExample aug;
      aug.target_litho = (*op)(ex.target_litho);
      aug.target_gan = (*op)(ex.target_gan);
      aug.mask_gan = (*op)(ex.mask_gan);
      examples_.push_back(std::move(aug));
    }
  }
}

void Dataset::sample_batch(Prng& rng, int m, nn::Tensor& targets, nn::Tensor& masks) const {
  GANOPC_CHECK(m > 0 && !examples_.empty());
  const auto& first = examples_.front();
  const std::int64_t s = first.target_gan.rows;
  targets = nn::Tensor({m, 1, s, s});
  masks = nn::Tensor({m, 1, s, s});

  std::vector<std::size_t> order(examples_.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  const std::int64_t plane = s * s;
  for (int j = 0; j < m; ++j) {
    const auto& ex = examples_[order[static_cast<std::size_t>(j) % order.size()]];
    std::copy(ex.target_gan.data.begin(), ex.target_gan.data.end(),
              targets.data() + j * plane);
    std::copy(ex.mask_gan.data.begin(), ex.mask_gan.data.end(), masks.data() + j * plane);
  }
}

}  // namespace ganopc::core
