#include "core/dataset.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/sectioned_file.hpp"
#include "geometry/bitmap_ops.hpp"
#include "geometry/raster.hpp"
#include "layout/synthesizer.hpp"

namespace ganopc::core {

Dataset Dataset::generate(const GanOpcConfig& config, const litho::LithoSim& sim) {
  config.validate();
  GANOPC_CHECK_MSG(sim.grid_size() == config.litho_grid,
                   "dataset: simulator grid does not match config");
  layout::SynthesisConfig synth;
  synth.clip_nm = config.clip_nm;
  const auto clips = layout::synthesize_library(synth, config.library_size, config.seed);

  Dataset ds;
  ds.examples_.resize(clips.size());
  std::vector<geom::Grid> ref_masks(clips.size());
  const ilt::IltEngine engine(sim, config.ilt);
  const std::int32_t pool = config.pool_factor();
  parallel_for(0, clips.size(), [&](std::size_t i) {
    TrainingExample ex;
    ex.target_litho = geom::rasterize(clips[i], config.litho_pixel_nm(), /*threshold=*/true);
    ilt::IltResult ref = engine.optimize(ex.target_litho);
    ex.target_gan = geom::downsample_avg(ex.target_litho, pool);
    ex.mask_gan = geom::downsample_avg(ref.mask_relaxed, pool);
    ref_masks[i] = std::move(ref.mask);
    ds.examples_[i] = std::move(ex);
  }, /*serial_threshold=*/1);
  // Audit the shipped ground truth through the batched litho path: the mean
  // print error of the ILT masks bounds the label quality the GAN trains on.
  const std::vector<geom::Grid> prints = sim.simulate_batch(ref_masks);
  double total_l2 = 0.0;
  for (std::size_t i = 0; i < prints.size(); ++i)
    total_l2 += geom::squared_l2(prints[i], ds.examples_[i].target_litho);
  GANOPC_INFO("dataset: generated " << ds.size() << " examples (litho "
                                    << config.litho_grid << ", gan " << config.gan_grid
                                    << "), mean ground-truth L2 "
                                    << (prints.empty() ? 0.0 : total_l2 / prints.size())
                                    << " px");
  return ds;
}

namespace {

// GOPCDST2: CRC-guarded sectioned container (common/sectioned_file.hpp) with
// a "meta" section (version + example count) and an "examples" section of
// grid triples. The legacy GOPCDSET stream (no CRC, unbounded count) is not
// read any more — the cache is cheap to regenerate.
constexpr char kDatasetMagic[] = "GOPCDST2";
constexpr std::uint32_t kDatasetVersion = 1;
constexpr std::uint64_t kMaxExamples = 1u << 24;
constexpr std::int32_t kMaxGridDim = 1 << 16;

void write_grid(ByteWriter& w, const geom::Grid& g) {
  const std::int32_t header[5] = {g.rows, g.cols, g.pixel_nm, g.origin_x, g.origin_y};
  w.bytes(header, sizeof header);
  w.bytes(g.data.data(), g.data.size() * sizeof(float));
}

geom::Grid read_grid(ByteReader& r, const std::string& what) {
  std::int32_t header[5];
  r.bytes(header, sizeof header);
  GANOPC_CHECK_MSG(header[0] > 0 && header[0] <= kMaxGridDim && header[1] > 0 &&
                       header[1] <= kMaxGridDim,
                   "corrupt " << what << ": bad grid shape " << header[0] << "x"
                              << header[1]);
  geom::Grid g(header[0], header[1], header[2], header[3], header[4]);
  GANOPC_CHECK_MSG(r.remaining() >= g.data.size() * sizeof(float),
                   "truncated " << what << ": grid data cut short");
  r.bytes(g.data.data(), g.data.size() * sizeof(float));
  return g;
}

}  // namespace

void Dataset::save(const std::string& path) const {
  GANOPC_FAILPOINT_THROW("dataset.save");
  SectionedFileWriter file(kDatasetMagic);
  ByteWriter& meta = file.section("meta");
  meta.pod(kDatasetVersion);
  meta.pod(static_cast<std::uint64_t>(examples_.size()));
  ByteWriter& body = file.section("examples");
  for (const auto& ex : examples_) {
    write_grid(body, ex.target_litho);
    write_grid(body, ex.target_gan);
    write_grid(body, ex.mask_gan);
  }
  file.write(path);
}

Dataset Dataset::load(const std::string& path, const GanOpcConfig& config) {
  const SectionedFileReader file(path, kDatasetMagic);
  ByteReader meta = file.open("meta");
  const auto version = meta.pod<std::uint32_t>();
  GANOPC_CHECK_MSG(version == kDatasetVersion,
                   path << ": unsupported dataset cache version " << version);
  const auto count = meta.pod<std::uint64_t>();
  GANOPC_CHECK_MSG(count <= kMaxExamples,
                   "corrupt dataset cache " << path << ": implausible count " << count);
  meta.expect_exhausted();

  ByteReader body = file.open("examples");
  const std::string what = path + " examples";
  Dataset ds;
  ds.examples_.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    TrainingExample ex;
    ex.target_litho = read_grid(body, what);
    ex.target_gan = read_grid(body, what);
    ex.mask_gan = read_grid(body, what);
    GANOPC_CHECK_MSG(ex.target_litho.rows == config.litho_grid &&
                         ex.target_gan.rows == config.gan_grid,
                     "dataset " << path << " does not match config geometry");
    ds.examples_.push_back(std::move(ex));
  }
  body.expect_exhausted();
  return ds;
}

namespace {

geom::Grid flip_h(const geom::Grid& g) {
  geom::Grid out = g;
  for (std::int32_t r = 0; r < g.rows; ++r)
    for (std::int32_t c = 0; c < g.cols; ++c) out.at(r, g.cols - 1 - c) = g.at(r, c);
  return out;
}

geom::Grid flip_v(const geom::Grid& g) {
  geom::Grid out = g;
  for (std::int32_t r = 0; r < g.rows; ++r)
    for (std::int32_t c = 0; c < g.cols; ++c) out.at(g.rows - 1 - r, c) = g.at(r, c);
  return out;
}

geom::Grid transpose(const geom::Grid& g) {
  geom::Grid out(g.cols, g.rows, g.pixel_nm, g.origin_y, g.origin_x);
  for (std::int32_t r = 0; r < g.rows; ++r)
    for (std::int32_t c = 0; c < g.cols; ++c) out.at(c, r) = g.at(r, c);
  return out;
}

}  // namespace

void Dataset::augment_symmetries() {
  const std::size_t base = examples_.size();
  examples_.reserve(base * 4);
  for (std::size_t i = 0; i < base; ++i) {
    const TrainingExample& ex = examples_[i];
    for (auto* op : {&flip_h, &flip_v, &transpose}) {
      TrainingExample aug;
      aug.target_litho = (*op)(ex.target_litho);
      aug.target_gan = (*op)(ex.target_gan);
      aug.mask_gan = (*op)(ex.mask_gan);
      examples_.push_back(std::move(aug));
    }
  }
}

void Dataset::sample_batch(Prng& rng, int m, nn::Tensor& targets, nn::Tensor& masks) const {
  GANOPC_CHECK(m > 0 && !examples_.empty());
  const auto& first = examples_.front();
  const std::int64_t s = first.target_gan.rows;
  targets = nn::Tensor({m, 1, s, s});
  masks = nn::Tensor({m, 1, s, s});

  std::vector<std::size_t> order(examples_.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  const std::int64_t plane = s * s;
  for (int j = 0; j < m; ++j) {
    const auto& ex = examples_[order[static_cast<std::size_t>(j) % order.size()]];
    std::copy(ex.target_gan.data.begin(), ex.target_gan.data.end(),
              targets.data() + j * plane);
    std::copy(ex.mask_gan.data.begin(), ex.mask_gan.data.end(), masks.data() + j * plane);
  }
}

}  // namespace ganopc::core
