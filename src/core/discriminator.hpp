// The discriminator D: classifies (target, mask) PAIRS, not bare masks.
//
// §3.2 of the paper: a discriminator on masks alone cannot enforce the
// one-one target->mask mapping (any reference mask M*_i maximizes Eq. 4);
// feeding the pair (Z_t, M) as a two-channel image makes "real" mean
// "this mask belongs to this target", which forces G(Z_t_i) ~= M*_i.
#pragma once

#include <cstdint>

#include "common/prng.hpp"
#include "nn/layer.hpp"

namespace ganopc::core {

class Discriminator {
 public:
  /// `paired` selects the paper's pair-input scheme; false gives the naive
  /// mask-only discriminator (kept for the §3.2 ablation). `dropout` > 0
  /// adds inverted dropout before the final classifier head — a standard
  /// GAN stabilizer when the discriminator overpowers the generator.
  Discriminator(std::int64_t image_size, std::int64_t base_channels, Prng& rng,
                bool paired = true, float dropout = 0.0f);

  /// Forward. Paired: targets+masks stacked as 2-channel input. Unpaired:
  /// masks only. Returns logits [N, 1] (no sigmoid — losses are
  /// logit-based for numerical stability).
  nn::Tensor forward(const nn::Tensor& targets, const nn::Tensor& masks);

  /// Back-propagate dLoss/dLogits; returns dLoss/dInput split into the mask
  /// channel's gradient [N, 1, S, S] (the target channel's gradient is
  /// discarded — targets are data, not optimized).
  nn::Tensor backward_to_mask(const nn::Tensor& grad_logits);

  nn::Sequential& net() { return net_; }
  std::vector<nn::Param> parameters() { return net_.parameters(); }
  std::vector<nn::Param> buffers() { return net_.buffers(); }
  void set_training(bool training) { net_.set_training(training); }
  bool paired() const { return paired_; }

 private:
  std::int64_t image_size_;
  bool paired_;
  nn::Sequential net_;
};

}  // namespace ganopc::core
