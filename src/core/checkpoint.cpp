// GOPCNET2 trainer checkpoint: the complete training state needed for
// bit-identical resume (DESIGN.md §8). Sections:
//   meta         — format version, phase, iteration counters, lr scale and a
//                  config fingerprint (grids, channels, batch, seed, dataset
//                  size) that must match the resuming process exactly
//   gen_params / gen_buffers / disc_params / disc_buffers
//                — weights + batch-norm running statistics
//   adam_g / adam_d / adam_pre
//                — per-optimizer step count and first/second moments
//   prng         — xoshiro256** state + the Box-Muller spare variate
//   history      — phase loss curves, accumulated seconds, rollback count
#include <cstdint>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/logging.hpp"
#include "common/sectioned_file.hpp"
#include "core/trainer.hpp"
#include "nn/serialize.hpp"
#include "obs/trace.hpp"

namespace ganopc::core {

namespace {

constexpr std::uint32_t kTrainerCheckpointVersion = 1;
// Moment-tensor counts and history lengths are bounded like the tensor blobs
// in nn/serialize.cpp: generous for any real run, small enough that a
// corrupt count cannot trigger a huge allocation.
constexpr std::uint32_t kMaxMoments = 1u << 20;
constexpr std::uint64_t kMaxHistory = 1u << 28;

void write_adam(ByteWriter& w, const nn::Adam& opt) {
  w.pod(opt.step_count());
  w.pod(static_cast<std::uint32_t>(opt.first_moments().size()));
  for (const auto& m : opt.first_moments()) nn::write_tensor(w, m);
  for (const auto& v : opt.second_moments()) nn::write_tensor(w, v);
}

void read_adam(ByteReader& r, nn::Adam& opt, const std::string& what) {
  const auto t = r.pod<std::int64_t>();
  const auto n = r.pod<std::uint32_t>();
  GANOPC_CHECK_MSG(n <= kMaxMoments,
                   "corrupt " << what << ": implausible moment count " << n);
  std::vector<nn::Tensor> m, v;
  m.reserve(n);
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.push_back(nn::read_tensor(r, what));
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(nn::read_tensor(r, what));
  opt.restore_state(t, std::move(m), std::move(v));
}

void write_history(ByteWriter& w, const std::vector<float>& h) {
  w.pod(static_cast<std::uint64_t>(h.size()));
  if (!h.empty()) w.bytes(h.data(), h.size() * sizeof(float));
}

std::vector<float> read_history(ByteReader& r, const std::string& what) {
  const auto n = r.pod<std::uint64_t>();
  GANOPC_CHECK_MSG(n <= kMaxHistory,
                   "corrupt " << what << ": implausible history length " << n);
  std::vector<float> h(static_cast<std::size_t>(n));
  if (n) {
    GANOPC_CHECK_MSG(r.remaining() >= h.size() * sizeof(float),
                     "truncated " << what << ": history cut short");
    r.bytes(h.data(), h.size() * sizeof(float));
  }
  return h;
}

}  // namespace

/// Friend of GanOpcTrainer: reads/writes its private training state.
struct TrainerCheckpointCodec {
  static void save(const GanOpcTrainer& tr, const std::string& path) {
    GANOPC_FAILPOINT_THROW("checkpoint.save");
    if (tr.config_.d_dropout > 0.0f)
      GANOPC_WARN("checkpoint: d_dropout > 0 — the dropout layer's private "
                  "rng is not checkpointed, so resume will not be bit-identical");
    SectionedFileWriter file(nn::kCheckpointMagicV2);

    ByteWriter& meta = file.section("meta");
    meta.pod(kTrainerCheckpointVersion);
    meta.pod(static_cast<std::uint32_t>(tr.phase_));
    meta.pod(static_cast<std::int64_t>(tr.next_iteration_));
    meta.pod(static_cast<std::int64_t>(tr.total_iterations_));
    meta.pod(tr.lr_scale_);
    meta.pod(tr.config_.gan_grid);
    meta.pod(tr.config_.litho_grid);
    meta.pod(tr.config_.base_channels);
    meta.pod(static_cast<std::int32_t>(tr.config_.batch_size));
    meta.pod(tr.config_.seed);
    meta.pod(static_cast<std::uint64_t>(tr.dataset_.size()));

    nn::write_named_tensors(file.section("gen_params"), tr.generator_.parameters());
    nn::write_named_tensors(file.section("gen_buffers"), tr.generator_.buffers());
    nn::write_named_tensors(file.section("disc_params"), tr.discriminator_.parameters());
    nn::write_named_tensors(file.section("disc_buffers"), tr.discriminator_.buffers());

    write_adam(file.section("adam_g"), *tr.g_opt_);
    write_adam(file.section("adam_d"), *tr.d_opt_);
    write_adam(file.section("adam_pre"), *tr.pre_opt_);

    ByteWriter& prng = file.section("prng");
    const Prng::State rng = tr.rng_.state();
    for (const auto s : rng.s) prng.pod(s);
    prng.pod(rng.cached_normal);
    prng.pod(static_cast<std::uint8_t>(rng.has_cached_normal ? 1 : 0));

    ByteWriter& hist = file.section("history");
    write_history(hist, tr.phase_stats_.l2_history);
    write_history(hist, tr.phase_stats_.g_adv_history);
    write_history(hist, tr.phase_stats_.d_loss_history);
    write_history(hist, tr.phase_stats_.litho_history);
    hist.pod(tr.phase_stats_.seconds);
    hist.pod(static_cast<std::int32_t>(tr.phase_stats_.divergence_rollbacks));

    file.write(path);
  }

  static ResumeInfo load(GanOpcTrainer& tr, const std::string& path) {
    const SectionedFileReader file(path, nn::kCheckpointMagicV2);
    GANOPC_CHECK_MSG(file.has("meta"),
                     path << " is a weights-only checkpoint, not a trainer "
                             "checkpoint; pass it to --generator instead");
    for (const char* name :
         {"gen_params", "gen_buffers", "disc_params", "disc_buffers", "adam_g",
          "adam_d", "adam_pre", "prng", "history"})
      GANOPC_CHECK_MSG(file.has(name),
                       "corrupt trainer checkpoint " << path << ": missing section '"
                                                     << name << "'");

    ByteReader meta = file.open("meta");
    const auto version = meta.pod<std::uint32_t>();
    GANOPC_CHECK_MSG(version == kTrainerCheckpointVersion,
                     path << ": unsupported trainer checkpoint version " << version);
    const auto phase = meta.pod<std::uint32_t>();
    GANOPC_CHECK_MSG(phase == static_cast<std::uint32_t>(TrainPhase::Pretrain) ||
                         phase == static_cast<std::uint32_t>(TrainPhase::Adversarial),
                     "corrupt trainer checkpoint " << path << ": bad phase " << phase);
    const auto next = meta.pod<std::int64_t>();
    const auto total = meta.pod<std::int64_t>();
    GANOPC_CHECK_MSG(next >= 0 && total >= 0 && next <= total,
                     "corrupt trainer checkpoint " << path << ": bad iteration counters "
                                                   << next << "/" << total);
    const auto lr_scale = meta.pod<float>();
    GANOPC_CHECK_MSG(lr_scale > 0.0f && lr_scale <= 1.0f,
                     "corrupt trainer checkpoint " << path << ": bad lr scale "
                                                   << lr_scale);
    const auto gan_grid = meta.pod<std::int32_t>();
    const auto litho_grid = meta.pod<std::int32_t>();
    const auto base_channels = meta.pod<std::int64_t>();
    const auto batch_size = meta.pod<std::int32_t>();
    const auto seed = meta.pod<std::uint64_t>();
    const auto dataset_size = meta.pod<std::uint64_t>();
    meta.expect_exhausted();
    GANOPC_CHECK_MSG(
        gan_grid == tr.config_.gan_grid && litho_grid == tr.config_.litho_grid &&
            base_channels == tr.config_.base_channels &&
            batch_size == tr.config_.batch_size && seed == tr.config_.seed &&
            dataset_size == tr.dataset_.size(),
        path << " was written for a different configuration (gan_grid=" << gan_grid
             << " litho_grid=" << litho_grid << " base_channels=" << base_channels
             << " batch_size=" << batch_size << " seed=" << seed
             << " dataset_size=" << dataset_size << ")");
    if (tr.config_.d_dropout > 0.0f)
      GANOPC_WARN("resume: d_dropout > 0 — the dropout layer's private rng is "
                  "not checkpointed, so this run will not bit-match the original");

    const auto read_tensors = [&](const char* sec, const std::vector<nn::Param>& ps) {
      ByteReader r = file.open(sec);
      nn::read_named_tensors(r, ps, path + " " + sec);
      r.expect_exhausted();
    };
    read_tensors("gen_params", tr.generator_.parameters());
    read_tensors("gen_buffers", tr.generator_.buffers());
    read_tensors("disc_params", tr.discriminator_.parameters());
    read_tensors("disc_buffers", tr.discriminator_.buffers());

    const auto read_opt = [&](const char* sec, nn::Adam& opt) {
      ByteReader r = file.open(sec);
      read_adam(r, opt, path + " " + sec);
      r.expect_exhausted();
    };
    read_opt("adam_g", *tr.g_opt_);
    read_opt("adam_d", *tr.d_opt_);
    read_opt("adam_pre", *tr.pre_opt_);

    {
      ByteReader r = file.open("prng");
      Prng::State rng{};
      for (auto& s : rng.s) s = r.pod<std::uint64_t>();
      rng.cached_normal = r.pod<double>();
      rng.has_cached_normal = r.pod<std::uint8_t>() != 0;
      r.expect_exhausted();
      tr.rng_.set_state(rng);  // throws on the all-zero (corrupt) state
    }

    TrainStats stats;
    {
      ByteReader r = file.open("history");
      const std::string what = path + " history";
      stats.l2_history = read_history(r, what);
      stats.g_adv_history = read_history(r, what);
      stats.d_loss_history = read_history(r, what);
      stats.litho_history = read_history(r, what);
      stats.seconds = r.pod<double>();
      stats.divergence_rollbacks = r.pod<std::int32_t>();
      r.expect_exhausted();
    }

    tr.phase_ = static_cast<TrainPhase>(phase);
    tr.next_iteration_ = static_cast<int>(next);
    tr.total_iterations_ = static_cast<int>(total);
    tr.lr_scale_ = lr_scale;
    tr.phase_stats_ = std::move(stats);
    tr.resume_pending_ = true;
    GANOPC_INFO("resumed " << path << ": "
                           << (tr.phase_ == TrainPhase::Pretrain ? "pretrain" : "train")
                           << " iteration " << tr.next_iteration_ << "/"
                           << tr.total_iterations_);
    return ResumeInfo{tr.phase_, tr.next_iteration_, tr.total_iterations_};
  }
};

void GanOpcTrainer::save_checkpoint(const std::string& path) const {
  GANOPC_OBS_SPAN("trainer.checkpoint");
  TrainerCheckpointCodec::save(*this, path);
}

ResumeInfo GanOpcTrainer::resume(const std::string& path) {
  return TrainerCheckpointCodec::load(*this, path);
}

}  // namespace ganopc::core
