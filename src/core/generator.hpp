// The generator G: maps a target image Z_t to a quasi-optimal mask M (§3.1).
//
// Two backbones are provided:
//  * AutoEncoder — the paper's architecture: a stacked-conv encoder doing
//    hierarchical feature abstraction and a mirrored transposed-conv decoder
//    predicting the pixel-based mask correction; sigmoid output keeps the
//    mask in (0, 1).
//  * UNet — the same encoder/decoder with skip connections, the variant
//    adopted by GAN-OPC's follow-up work; kept here for the architecture
//    ablation (bench/ablation_generator).
#pragma once

#include <cstdint>
#include <memory>

#include "common/prng.hpp"
#include "geometry/grid.hpp"
#include "nn/layer.hpp"

namespace ganopc::core {

enum class GeneratorArch { AutoEncoder, UNet };

/// Encoder-decoder with channel-concat skip connections. Exposed as a Layer
/// so tests can grad-check it like any other.
class UNetBackbone final : public nn::Layer {
 public:
  UNetBackbone(std::int64_t image_size, std::int64_t base_channels, Prng& rng);

  nn::Tensor forward(const nn::Tensor& input) override;
  nn::Tensor backward(const nn::Tensor& grad_output) override;
  std::vector<nn::Param> parameters() override;
  std::vector<nn::Param> buffers() override;
  std::string name() const override { return "UNetBackbone"; }

 private:
  void on_mode_change() override;

  std::int64_t channels_;
  nn::Sequential enc1_, enc2_, enc3_;
  nn::Sequential dec3_, dec2_, dec1_;
};

class Generator {
 public:
  /// image_size must divide by 8 (three stride-2 stages).
  Generator(std::int64_t image_size, std::int64_t base_channels, Prng& rng,
            GeneratorArch arch = GeneratorArch::AutoEncoder);

  /// Forward: targets [N, 1, S, S] -> masks [N, 1, S, S] in (0, 1).
  nn::Tensor forward(const nn::Tensor& targets);

  /// Back-propagate dLoss/dMask, accumulating parameter gradients.
  void backward(const nn::Tensor& grad_masks);

  nn::Layer& net() { return *net_; }
  std::vector<nn::Param> parameters() { return net_->parameters(); }
  std::vector<nn::Param> buffers() { return net_->buffers(); }
  void set_training(bool training) { net_->set_training(training); }
  std::int64_t image_size() const { return image_size_; }
  GeneratorArch arch() const { return arch_; }

  /// Single-image convenience used by the inference flow: grid in, mask out.
  geom::Grid infer(const geom::Grid& target);

 private:
  std::int64_t image_size_;
  GeneratorArch arch_;
  std::unique_ptr<nn::Layer> net_;
};

/// Grid <-> Tensor helpers shared by the trainer and the flow.
nn::Tensor grid_to_tensor(const geom::Grid& grid);
geom::Grid tensor_to_grid(const nn::Tensor& tensor, const geom::Grid& like);

}  // namespace ganopc::core
