// Training strategies for GAN-OPC.
//
// GanOpcTrainer::pretrain  — Algorithm 2 (ILT-guided pre-training): the
//   lithography error gradient dE/dM flows from the litho engine through the
//   bilinear-interpolation adjoint into the generator's weights.
// GanOpcTrainer::train     — Algorithm 1 (adversarial training with the
//   combined objective Eq. 10): alternating D / G mini-batch updates, with
//   l_g = -log D(Z_t, G(Z_t)) + alpha ||M* - G(Z_t)||_2^2.
//
// Both phases are crash-safe (DESIGN.md §8): they checkpoint the complete
// training state (weights, batch-norm buffers, Adam moments, Prng stream,
// iteration counter, loss history) to a GOPCNET2 container, honor a
// cooperative stop flag by flushing a final checkpoint, and guard every
// step with a non-finite loss/gradient check that rolls the step back and
// backs off the learning rate before retrying.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/prng.hpp"
#include "core/config.hpp"
#include "core/dataset.hpp"
#include "core/discriminator.hpp"
#include "core/generator.hpp"
#include "litho/lithosim.hpp"
#include "nn/optimizer.hpp"

namespace ganopc::core {

struct TrainStats {
  /// Mean per-instance ||M* - G(Z_t)||_2^2 at each iteration (the y-axis of
  /// Figure 7).
  std::vector<float> l2_history;
  std::vector<float> g_adv_history;   ///< generator adversarial loss
  std::vector<float> d_loss_history;  ///< discriminator loss
  std::vector<float> litho_history;   ///< pretraining litho error E (Alg. 2)
  double seconds = 0.0;
  bool interrupted = false;           ///< stopped early via TrainRunOptions::stop
  int divergence_rollbacks = 0;       ///< non-finite steps rolled back + retried
};

/// Per-run robustness knobs for pretrain() / train(). Defaults preserve the
/// historical behavior (no checkpointing) while keeping the divergence
/// guard armed.
struct TrainRunOptions {
  /// Checkpoint file; empty disables checkpointing entirely.
  std::string checkpoint_path;
  /// Save every N completed iterations (0 = only on stop / completion).
  int checkpoint_every = 0;
  /// Cooperative stop: when *stop becomes true the run flushes a final
  /// checkpoint (if a path is set) and returns with interrupted = true.
  const std::atomic<bool>* stop = nullptr;
  /// Non-finite loss/gradient guard: rollbacks allowed per iteration before
  /// the run throws ganopc::Error. 0 disables the guard (and the per-step
  /// state snapshot that feeds it).
  int max_divergence_retries = 3;
  /// Learning-rate multiplier applied at each rollback (persists for the
  /// rest of the run and across resume).
  float lr_backoff = 0.5f;
};

/// Where a checkpoint was taken. Pretrain is Algorithm 2, Adversarial is
/// Algorithm 1; a checkpoint in the Adversarial phase implies pre-training
/// already completed.
enum class TrainPhase : std::uint32_t { None = 0, Pretrain = 1, Adversarial = 2 };

/// Summary returned by GanOpcTrainer::resume().
struct ResumeInfo {
  TrainPhase phase = TrainPhase::None;
  int next_iteration = 0;   ///< first iteration not yet run in that phase
  int total_iterations = 0; ///< the phase's planned length when checkpointed
};

class GanOpcTrainer {
 public:
  /// `sim` must run at config.litho_grid resolution; it is used only by
  /// pretrain(). Generator/discriminator operate at config.gan_grid.
  GanOpcTrainer(const GanOpcConfig& config, Generator& generator,
                Discriminator& discriminator, const Dataset& dataset,
                const litho::LithoSim& sim, Prng& rng);

  /// Algorithm 2: ILT-guided pre-training of the generator.
  TrainStats pretrain(int iterations) { return pretrain(iterations, TrainRunOptions{}); }
  TrainStats pretrain(int iterations, const TrainRunOptions& options);

  /// Algorithm 1: adversarial training. Records the Eq. (9) L2 per
  /// iteration for the Figure 7 curves. When config.cosine_lr is set, pass
  /// the same `iterations` after a resume — the schedule is derived from it.
  TrainStats train(int iterations) { return train(iterations, TrainRunOptions{}); }
  TrainStats train(int iterations, const TrainRunOptions& options);

  /// Restore a GOPCNET2 training checkpoint written by a previous run. The
  /// next pretrain()/train() call continues from the saved iteration with
  /// bit-identical weights, optimizer moments, Prng stream and loss history.
  /// Throws ganopc::Error if the file is corrupt or was written for a
  /// different configuration.
  ResumeInfo resume(const std::string& path);

  /// Snapshot the complete training state to `path` (atomic write). Called
  /// automatically per TrainRunOptions; public for ad-hoc saves.
  void save_checkpoint(const std::string& path) const;

 private:
  friend struct TrainerCheckpointCodec;

  struct StepSnapshot;
  StepSnapshot capture_step_state(bool include_discriminator) const;
  void rollback_step(const StepSnapshot& snapshot, float lr_backoff, TrainStats& stats,
                     int iteration, int attempts, const char* what);

  const GanOpcConfig& config_;
  Generator& generator_;
  Discriminator& discriminator_;
  const Dataset& dataset_;
  const litho::LithoSim& sim_;
  Prng& rng_;
  std::unique_ptr<nn::Adam> g_opt_;
  std::unique_ptr<nn::Adam> d_opt_;
  std::unique_ptr<nn::Adam> pre_opt_;

  // Crash-safety bookkeeping (persisted in checkpoints).
  TrainPhase phase_ = TrainPhase::None;  ///< phase of the state below
  int next_iteration_ = 0;               ///< first iteration not yet run
  int total_iterations_ = 0;             ///< planned length of the phase
  float lr_scale_ = 1.0f;                ///< cumulative divergence backoff
  TrainStats phase_stats_;               ///< history accumulated in phase_
  bool resume_pending_ = false;          ///< resume() loaded state not yet consumed
};

}  // namespace ganopc::core
