// Training strategies for GAN-OPC.
//
// GanOpcTrainer::pretrain  — Algorithm 2 (ILT-guided pre-training): the
//   lithography error gradient dE/dM flows from the litho engine through the
//   bilinear-interpolation adjoint into the generator's weights.
// GanOpcTrainer::train     — Algorithm 1 (adversarial training with the
//   combined objective Eq. 10): alternating D / G mini-batch updates, with
//   l_g = -log D(Z_t, G(Z_t)) + alpha ||M* - G(Z_t)||_2^2.
#pragma once

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/dataset.hpp"
#include "core/discriminator.hpp"
#include "core/generator.hpp"
#include "litho/lithosim.hpp"
#include "nn/optimizer.hpp"

namespace ganopc::core {

struct TrainStats {
  /// Mean per-instance ||M* - G(Z_t)||_2^2 at each iteration (the y-axis of
  /// Figure 7).
  std::vector<float> l2_history;
  std::vector<float> g_adv_history;   ///< generator adversarial loss
  std::vector<float> d_loss_history;  ///< discriminator loss
  std::vector<float> litho_history;   ///< pretraining litho error E (Alg. 2)
  double seconds = 0.0;
};

class GanOpcTrainer {
 public:
  /// `sim` must run at config.litho_grid resolution; it is used only by
  /// pretrain(). Generator/discriminator operate at config.gan_grid.
  GanOpcTrainer(const GanOpcConfig& config, Generator& generator,
                Discriminator& discriminator, const Dataset& dataset,
                const litho::LithoSim& sim, Prng& rng);

  /// Algorithm 2: ILT-guided pre-training of the generator.
  TrainStats pretrain(int iterations);

  /// Algorithm 1: adversarial training. Records the Eq. (9) L2 per
  /// iteration for the Figure 7 curves.
  TrainStats train(int iterations);

 private:
  const GanOpcConfig& config_;
  Generator& generator_;
  Discriminator& discriminator_;
  const Dataset& dataset_;
  const litho::LithoSim& sim_;
  Prng& rng_;
  std::unique_ptr<nn::Adam> g_opt_;
  std::unique_ptr<nn::Adam> d_opt_;
  std::unique_ptr<nn::Adam> pre_opt_;
};

}  // namespace ganopc::core
