#include "core/discriminator.hpp"

#include "common/error.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/init.hpp"
#include "nn/layers.hpp"

namespace ganopc::core {

Discriminator::Discriminator(std::int64_t image_size, std::int64_t base_channels, Prng& rng,
                             bool paired, float dropout)
    : image_size_(image_size), paired_(paired) {
  GANOPC_CHECK_MSG(image_size % 8 == 0, "discriminator image size must divide by 8");
  const std::int64_t c = base_channels;
  const std::int64_t in_ch = paired ? 2 : 1;
  net_.emplace<nn::Conv2d>(in_ch, c, 3, 2, 1);
  net_.emplace<nn::LeakyReLU>(0.2f);
  net_.emplace<nn::Conv2d>(c, 2 * c, 3, 2, 1);
  net_.emplace<nn::BatchNorm2d>(2 * c);
  net_.emplace<nn::LeakyReLU>(0.2f);
  net_.emplace<nn::Conv2d>(2 * c, 4 * c, 3, 2, 1);
  net_.emplace<nn::BatchNorm2d>(4 * c);
  net_.emplace<nn::LeakyReLU>(0.2f);
  net_.emplace<nn::Flatten>();
  if (dropout > 0.0f) net_.emplace<nn::Dropout>(dropout, rng());
  const std::int64_t s8 = image_size / 8;
  net_.emplace<nn::Linear>(4 * c * s8 * s8, 1);
  nn::init_network(net_, rng);
}

nn::Tensor Discriminator::forward(const nn::Tensor& targets, const nn::Tensor& masks) {
  GANOPC_CHECK_MSG(masks.dim() == 4 && masks.shape(1) == 1 &&
                       masks.shape(2) == image_size_ && masks.shape(3) == image_size_,
                   "discriminator: bad mask input " << masks.shape_str());
  if (!paired_) return net_.forward(masks);
  GANOPC_CHECK_MSG(targets.same_shape(masks), "discriminator: target/mask shape mismatch");
  const auto N = masks.shape(0);
  const std::int64_t plane = image_size_ * image_size_;
  nn::Tensor stacked({N, 2, image_size_, image_size_});
  for (std::int64_t n = 0; n < N; ++n) {
    std::copy(targets.data() + n * plane, targets.data() + (n + 1) * plane,
              stacked.data() + n * 2 * plane);
    std::copy(masks.data() + n * plane, masks.data() + (n + 1) * plane,
              stacked.data() + n * 2 * plane + plane);
  }
  return net_.forward(stacked);
}

nn::Tensor Discriminator::backward_to_mask(const nn::Tensor& grad_logits) {
  const nn::Tensor grad_in = net_.backward(grad_logits);
  if (!paired_) return grad_in;
  const auto N = grad_in.shape(0);
  const std::int64_t plane = image_size_ * image_size_;
  nn::Tensor grad_mask({N, 1, image_size_, image_size_});
  for (std::int64_t n = 0; n < N; ++n) {
    // Channel 1 is the mask channel.
    std::copy(grad_in.data() + n * 2 * plane + plane, grad_in.data() + (n + 1) * 2 * plane,
              grad_mask.data() + n * plane);
  }
  return grad_mask;
}

}  // namespace ganopc::core
