#include "core/flow.hpp"

#include "common/error.hpp"
#include "common/timer.hpp"
#include "geometry/bitmap_ops.hpp"
#include "geometry/raster.hpp"

namespace ganopc::core {

GanOpcFlow::GanOpcFlow(const GanOpcConfig& config, Generator* generator,
                       const litho::LithoSim& sim)
    : config_(config), generator_(generator), sim_(sim), engine_(sim, config.ilt) {
  config.validate();
  GANOPC_CHECK_MSG(sim.grid_size() == config.litho_grid, "flow: simulator grid mismatch");
  if (generator_ != nullptr)
    GANOPC_CHECK_MSG(generator_->image_size() == config.gan_grid,
                     "flow: generator size mismatch");
}

FlowResult GanOpcFlow::run(const geom::Layout& clip) const {
  GANOPC_CHECK_MSG(generator_ != nullptr, "flow: no generator attached");
  const geom::Grid target =
      geom::rasterize(clip, config_.litho_pixel_nm(), /*threshold=*/true);

  WallTimer gen_timer;
  const geom::Grid target_gan = geom::downsample_avg(target, config_.pool_factor());
  const geom::Grid mask_gan = generator_->infer(target_gan);
  const geom::Grid mask_init = geom::upsample_bilinear(mask_gan, config_.pool_factor());
  const double gen_seconds = gen_timer.seconds();

  return refine_and_score(target, mask_init, gen_seconds);
}

FlowResult GanOpcFlow::run_ilt_only(const geom::Layout& clip) const {
  const geom::Grid target =
      geom::rasterize(clip, config_.litho_pixel_nm(), /*threshold=*/true);
  return refine_and_score(target, target, 0.0);
}

FlowResult GanOpcFlow::evaluate_mask(const geom::Grid& target, const geom::Grid& mask) const {
  FlowResult result;
  result.target = target;
  result.mask = mask;
  result.wafer = sim_.simulate(mask);
  result.l2_px = geom::squared_l2(result.wafer, target);
  const double px_area = static_cast<double>(sim_.pixel_nm()) * sim_.pixel_nm();
  result.l2_nm2 = result.l2_px * px_area;
  result.pvb_nm2 = sim_.pv_band(mask).area_nm2;
  return result;
}

FlowResult GanOpcFlow::refine_and_score(const geom::Grid& target,
                                        const geom::Grid& initial_mask,
                                        double generator_seconds) const {
  const ilt::IltResult refined = engine_.optimize(target, initial_mask);
  FlowResult result = evaluate_mask(target, refined.mask);
  result.generator_seconds = generator_seconds;
  result.ilt_seconds = refined.runtime_s;
  result.ilt_iterations = refined.iterations;
  return result;
}

}  // namespace ganopc::core
