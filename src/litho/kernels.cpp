#include "litho/kernels.hpp"

#include <cmath>

#include "common/error.hpp"
#include "fft/fft.hpp"
#include "litho/tcc.hpp"

namespace ganopc::litho {

namespace {

// Flipped kernel: value at (-f) mod N per axis.
std::vector<std::complex<float>> flip_freq(const std::vector<std::complex<float>>& hat,
                                           std::int32_t grid) {
  std::vector<std::complex<float>> flipped(hat.size());
  for (std::int32_t r = 0; r < grid; ++r) {
    const std::int32_t nr = (grid - r) % grid;
    for (std::int32_t c = 0; c < grid; ++c) {
      const std::int32_t nc = (grid - c) % grid;
      flipped[static_cast<std::size_t>(r) * grid + c] =
          hat[static_cast<std::size_t>(nr) * grid + nc];
    }
  }
  return flipped;
}

}  // namespace

void SocsKernels::validate_geometry() const {
  GANOPC_CHECK_MSG(config_.valid(), "invalid optics configuration");
  GANOPC_CHECK_MSG(fft::is_pow2(static_cast<std::size_t>(grid_)),
                   "grid size must be a power of two");
  GANOPC_CHECK(pixel_nm_ > 0);
  // The grid must resolve the full pupil: the highest passed frequency is
  // (1 + sigma_outer) * NA / lambda, which must be below Nyquist.
  const double f_max = (1.0 + config_.sigma_outer) * config_.cutoff();
  const double nyquist = 0.5 / pixel_nm_;
  GANOPC_CHECK_MSG(f_max < nyquist, "pixel size too coarse for the pupil: f_max="
                                        << f_max << " >= nyquist=" << nyquist);
}

void SocsKernels::adopt(TccKernelSet set) {
  GANOPC_CHECK_MSG(!set.kernels_hat.empty() &&
                       set.kernels_hat.size() == set.weights.size(),
                   "kernel set must carry one weight per kernel");
  const std::size_t npx = static_cast<std::size_t>(grid_) * grid_;
  for (std::size_t k = 0; k < set.kernels_hat.size(); ++k) {
    GANOPC_CHECK_MSG(set.kernels_hat[k].size() == npx,
                     "kernel " << k << " is not on the " << grid_ << "x" << grid_
                               << " grid");
    GANOPC_CHECK_MSG(std::isfinite(set.weights[k]) && set.weights[k] >= 0.0f,
                     "kernel weights must be finite and nonnegative");
    GANOPC_CHECK_MSG(k == 0 || set.weights[k] <= set.weights[k - 1],
                     "kernel weights must be nonincreasing");
    freq_kernels_flipped_.push_back(flip_freq(set.kernels_hat[k], grid_));
    freq_kernels_.push_back(std::move(set.kernels_hat[k]));
    weights_.push_back(set.weights[k]);
  }
  GANOPC_CHECK_MSG(std::isfinite(set.captured_energy) &&
                       set.captured_energy >= 0.0 && set.captured_energy <= 1.0 + 1e-9,
                   "captured_energy must be a fraction in [0, 1]");
  captured_energy_ = std::min(set.captured_energy, 1.0);
}

SocsKernels::SocsKernels(const OpticsConfig& config, std::int32_t grid_size,
                         std::int32_t pixel_nm, TccKernelSet set)
    : config_(config), grid_(grid_size), pixel_nm_(pixel_nm) {
  validate_geometry();
  adopt(std::move(set));
}

SocsKernels::SocsKernels(const OpticsConfig& config, std::int32_t grid_size,
                         std::int32_t pixel_nm)
    : config_(config), grid_(grid_size), pixel_nm_(pixel_nm) {
  validate_geometry();

  if (config.kernel_method == KernelMethod::TccSvd) {
    TccKernelSet tcc = compute_tcc_kernels(config, grid_size, pixel_nm,
                                           config.num_kernels);
    adopt(std::move(tcc));
    return;
  }

  const auto points = sample_annular_source(config, config.num_kernels);
  const std::size_t n = static_cast<std::size_t>(grid_) * grid_;
  const double df = 1.0 / (static_cast<double>(grid_) * pixel_nm);
  const double cutoff2 = config.cutoff() * config.cutoff();
  const double lambda = config.wavelength_nm;

  freq_kernels_.reserve(points.size());
  freq_kernels_flipped_.reserve(points.size());
  weights_.reserve(points.size());
  for (const auto& p : points) {
    std::vector<std::complex<float>> hat(n, {0.0f, 0.0f});
    for (std::int32_t r = 0; r < grid_; ++r) {
      const std::int32_t rr = r <= grid_ / 2 ? r : r - grid_;  // wrapped index
      const double fy = rr * df;
      for (std::int32_t c = 0; c < grid_; ++c) {
        const std::int32_t cc = c <= grid_ / 2 ? c : c - grid_;
        const double fx = cc * df;
        // Pupil evaluated at the frequency shifted by the source point: an
        // oblique illumination tilts the spectrum across the pupil.
        const double gx = fx + p.fx, gy = fy + p.fy;
        const double g2 = gx * gx + gy * gy;
        if (g2 >= cutoff2) continue;
        if (config.defocus_nm != 0.0) {
          // Paraxial defocus phase: exp(-i * pi * lambda * z * |f|^2).
          const double phase = -M_PI * lambda * config.defocus_nm * g2;
          hat[static_cast<std::size_t>(r) * grid_ + c] = {
              static_cast<float>(std::cos(phase)), static_cast<float>(std::sin(phase))};
        } else {
          hat[static_cast<std::size_t>(r) * grid_ + c] = {1.0f, 0.0f};
        }
      }
    }
    freq_kernels_flipped_.push_back(flip_freq(hat, grid_));
    freq_kernels_.push_back(std::move(hat));
    weights_.push_back(static_cast<float>(p.weight));
  }
}

const std::vector<std::complex<float>>& SocsKernels::freq_kernel(int k) const {
  return freq_kernels_.at(static_cast<std::size_t>(k));
}

const std::vector<std::complex<float>>& SocsKernels::freq_kernel_flipped(int k) const {
  return freq_kernels_flipped_.at(static_cast<std::size_t>(k));
}

std::vector<std::complex<float>> SocsKernels::spatial_kernel(int k) const {
  auto spatial = freq_kernels_.at(static_cast<std::size_t>(k));
  fft::fft_2d(spatial, static_cast<std::size_t>(grid_), static_cast<std::size_t>(grid_),
              /*inverse=*/true);
  fft::fftshift_2d(spatial, static_cast<std::size_t>(grid_),
                   static_cast<std::size_t>(grid_));
  return spatial;
}

}  // namespace ganopc::litho
