#include "litho/tcc.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/prng.hpp"
#include "fft/fft.hpp"

namespace ganopc::litho {

namespace {

using cdouble = std::complex<double>;

// One frequency sample inside the extended pupil support.
struct FreqPoint {
  std::int32_t row, col;  // unshifted grid indices
  double fx, fy;          // cycles/nm
};

// Dense source discretization on a polar grid inside the annulus; weights
// uniform per unit area and normalized to 1.
struct SourceSample {
  double fx, fy, weight;
};

std::vector<SourceSample> dense_source(const OpticsConfig& cfg, int count) {
  const int rings = std::max(2, static_cast<int>(std::round(std::sqrt(count / 6.0))));
  std::vector<SourceSample> samples;
  const double cutoff = cfg.cutoff();
  double total = 0.0;
  for (int r = 0; r < rings; ++r) {
    const double sr0 = cfg.sigma_inner + (cfg.sigma_outer - cfg.sigma_inner) * r / rings;
    const double sr1 =
        cfg.sigma_inner + (cfg.sigma_outer - cfg.sigma_inner) * (r + 1) / rings;
    const double mid = 0.5 * (sr0 + sr1);
    const double ring_area = sr1 * sr1 - sr0 * sr0;
    const int per_ring = std::max(
        4, static_cast<int>(std::round(count * mid /
                                       (0.5 * (cfg.sigma_inner + cfg.sigma_outer) * rings))));
    for (int a = 0; a < per_ring; ++a) {
      const double theta = 2.0 * M_PI * (a + 0.5 * (r % 2)) / per_ring;
      SourceSample s;
      s.fx = mid * cutoff * std::cos(theta);
      s.fy = mid * cutoff * std::sin(theta);
      s.weight = ring_area / per_ring;
      total += s.weight;
      samples.push_back(s);
    }
  }
  for (auto& s : samples) s.weight /= total;
  return samples;
}

// Pupil function (amplitude + defocus phase) at frequency (fx, fy).
cdouble pupil(const OpticsConfig& cfg, double fx, double fy) {
  const double f2 = fx * fx + fy * fy;
  const double c = cfg.cutoff();
  if (f2 >= c * c) return {0.0, 0.0};
  if (cfg.defocus_nm == 0.0) return {1.0, 0.0};
  const double phase = -M_PI * cfg.wavelength_nm * cfg.defocus_nm * f2;
  return {std::cos(phase), std::sin(phase)};
}

// Modified Gram-Schmidt orthonormalization of k column vectors of length n.
void orthonormalize(std::vector<std::vector<cdouble>>& basis) {
  for (std::size_t i = 0; i < basis.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      cdouble dot{0.0, 0.0};
      for (std::size_t p = 0; p < basis[i].size(); ++p)
        dot += std::conj(basis[j][p]) * basis[i][p];
      for (std::size_t p = 0; p < basis[i].size(); ++p)
        basis[i][p] -= dot * basis[j][p];
    }
    double norm2 = 0.0;
    for (const auto& v : basis[i]) norm2 += std::norm(v);
    const double inv = norm2 > 0 ? 1.0 / std::sqrt(norm2) : 0.0;
    for (auto& v : basis[i]) v *= inv;
  }
}

}  // namespace

TccKernelSet compute_tcc_kernels(const OpticsConfig& config, std::int32_t grid_size,
                                 std::int32_t pixel_nm, int num_kernels,
                                 const TccOptions& options) {
  GANOPC_CHECK_MSG(config.valid(), "invalid optics configuration");
  GANOPC_CHECK_MSG(fft::is_pow2(static_cast<std::size_t>(grid_size)),
                   "grid size must be a power of two");
  GANOPC_CHECK(num_kernels > 0 && options.power_iterations > 0);
  GANOPC_CHECK_MSG(!options.source_points.empty() || options.source_samples > 8,
                   "dense source discretization needs more than 8 samples");
  const double df = 1.0 / (static_cast<double>(grid_size) * pixel_nm);
  const double support = (1.0 + config.sigma_outer) * config.cutoff();
  GANOPC_CHECK_MSG(support < 0.5 / pixel_nm, "pixel size too coarse for the pupil");

  // Enumerate grid frequencies inside the extended pupil support.
  std::vector<FreqPoint> points;
  for (std::int32_t r = 0; r < grid_size; ++r) {
    const std::int32_t rr = r <= grid_size / 2 ? r : r - grid_size;
    const double fy = rr * df;
    for (std::int32_t c = 0; c < grid_size; ++c) {
      const std::int32_t cc = c <= grid_size / 2 ? c : c - grid_size;
      const double fx = cc * df;
      if (fx * fx + fy * fy <= support * support) points.push_back({r, c, fx, fy});
    }
  }
  const std::size_t n = points.size();
  GANOPC_CHECK_MSG(static_cast<int>(n) >= num_kernels,
                   "pupil support smaller than requested kernel count");

  // Assemble the Hermitian TCC matrix: T += J_s * p_s p_s^H where p_s is the
  // shifted-pupil vector for one source sample. Row blocks accumulate in
  // parallel.
  std::vector<cdouble> tcc(n * n, cdouble{0.0, 0.0});
  std::vector<SourceSample> source;
  if (options.source_points.empty()) {
    source = dense_source(config, options.source_samples);
  } else {
    double total = 0.0;
    for (const auto& p : options.source_points) {
      GANOPC_CHECK_MSG(std::isfinite(p.fx) && std::isfinite(p.fy) &&
                           std::isfinite(p.weight) && p.weight > 0.0,
                       "tcc: explicit source points need finite positive weights");
      source.push_back({p.fx, p.fy, p.weight});
      total += p.weight;
    }
    for (auto& s : source) s.weight /= total;
  }
  std::vector<std::vector<cdouble>> shifted(source.size());
  for (std::size_t s = 0; s < source.size(); ++s) {
    shifted[s].resize(n);
    for (std::size_t i = 0; i < n; ++i)
      shifted[s][i] = pupil(config, source[s].fx + points[i].fx,
                            source[s].fy + points[i].fy);
  }
  parallel_for_chunks(0, n, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t s = 0; s < source.size(); ++s) {
      const double w = source[s].weight;
      const auto& p = shifted[s];
      for (std::size_t i = r0; i < r1; ++i) {
        if (p[i] == cdouble{0.0, 0.0}) continue;
        const cdouble pi_w = w * p[i];
        cdouble* row = &tcc[i * n];
        for (std::size_t j = 0; j < n; ++j) row[j] += pi_w * std::conj(p[j]);
      }
    }
  }, /*serial_threshold=*/1);

  // Subspace iteration for the leading eigenpairs.
  Prng rng(options.seed);
  std::vector<std::vector<cdouble>> basis(static_cast<std::size_t>(num_kernels));
  for (auto& vec : basis) {
    vec.resize(n);
    for (auto& v : vec) v = {rng.normal(), rng.normal()};
  }
  orthonormalize(basis);
  std::vector<std::vector<cdouble>> product(basis.size());
  for (int it = 0; it < options.power_iterations; ++it) {
    parallel_for(0, basis.size(), [&](std::size_t k) {
      auto& out = product[k];
      out.assign(n, cdouble{0.0, 0.0});
      for (std::size_t i = 0; i < n; ++i) {
        const cdouble* row = &tcc[i * n];
        cdouble acc{0.0, 0.0};
        for (std::size_t j = 0; j < n; ++j) acc += row[j] * basis[k][j];
        out[i] = acc;
      }
    }, /*serial_threshold=*/1);
    std::swap(basis, product);
    orthonormalize(basis);
  }

  // Rayleigh quotients give the eigenvalues.
  std::vector<double> eigenvalues(basis.size(), 0.0);
  for (std::size_t k = 0; k < basis.size(); ++k) {
    cdouble acc{0.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) {
      const cdouble* row = &tcc[i * n];
      cdouble ti{0.0, 0.0};
      for (std::size_t j = 0; j < n; ++j) ti += row[j] * basis[k][j];
      acc += std::conj(basis[k][i]) * ti;
    }
    eigenvalues[k] = acc.real();
  }
  // Sort by descending eigenvalue.
  std::vector<std::size_t> order(basis.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return eigenvalues[a] > eigenvalues[b]; });

  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace += tcc[i * n + i].real();

  TccKernelSet result;
  const std::size_t grid_px = static_cast<std::size_t>(grid_size) * grid_size;
  double captured = 0.0;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t k = order[rank];
    GANOPC_CHECK_MSG(std::isfinite(eigenvalues[k]),
                     "tcc: eigensolve produced a non-finite eigenvalue "
                     "(poisoned optics?)");
    const double lambda = std::max(eigenvalues[k], 0.0);
    captured += lambda;
    std::vector<std::complex<float>> kernel(grid_px, {0.0f, 0.0f});
    for (std::size_t i = 0; i < n; ++i) {
      kernel[static_cast<std::size_t>(points[i].row) * grid_size + points[i].col] = {
          static_cast<float>(basis[k][i].real()), static_cast<float>(basis[k][i].imag())};
    }
    result.kernels_hat.push_back(std::move(kernel));
    result.weights.push_back(static_cast<float>(lambda));
  }
  result.captured_energy = trace > 0.0 ? captured / trace : 0.0;
  return result;
}

}  // namespace ganopc::litho
