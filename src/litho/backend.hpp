// Pluggable litho backends: kernel factories behind one SOCS interface.
//
// Every hot surface of the simulator — aerial_into, simulate_batch, the
// Eq. (14) adjoint gradient, pv_band — consumes a SocsKernels set and nothing
// else, so "swap the imaging model" reduces to "swap the kernel factory".
// A LithoBackend builds the SocsKernels for a target grid; LithoSim and the
// engine layer never know which physics produced them:
//
//   AbbeBackend  — one coherent kernel per sampled source point (the
//                  reference; N_h = OpticsConfig::num_kernels transforms per
//                  image).
//   TccBackend   — assembles the Hopkins TCC operator *from the same Abbe
//                  source sampling*, eigendecomposes it, and keeps the top-k
//                  kernels. Because the generating measure is identical, the
//                  truncated SOCS converges to the Abbe image as k grows and
//                  `1 - captured_energy` bounds the relative aerial L2 error
//                  — the contract the `equivalence` test tier pins. Fewer
//                  kernels at matched accuracy is the serving speedup
//                  (k transforms instead of N_h per image).
//
// `parse_litho_backend` understands the CLI spelling:
//   "abbe"      — the reference path (default)
//   "tcc"       — auto-truncated TCC: smallest k whose captured energy meets
//                 the floor (default 0.99)
//   "tcc:<k>"   — exactly k kernels, the user's explicit speed/accuracy
//                 override: the energy floor is waived, but captured_energy
//                 stays recorded on the kernel set and the differential bound
//                 in the equivalence tier scales with it
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "litho/kernels.hpp"
#include "litho/optics.hpp"
#include "litho/tcc.hpp"

namespace ganopc::litho {

/// Parsed `--litho-backend` selection. `tcc_kernels <= 0` means "auto": keep
/// the smallest k whose captured energy reaches `min_captured_energy`.
struct LithoBackendSpec {
  enum class Kind { Abbe, Tcc };
  Kind kind = Kind::Abbe;
  int tcc_kernels = 0;
  double min_captured_energy = 0.99;
};

/// Parse "abbe" | "tcc" | "tcc:<k>" (throws a typed kInvalidInput Status on
/// anything else, including k < 1).
LithoBackendSpec parse_litho_backend(const std::string& text);

/// Stable display name: "abbe", "tcc", or "tcc:<k>".
std::string litho_backend_name(const LithoBackendSpec& spec);

/// A kernel factory. Stateless and cheap to hold; `build` does the work.
class LithoBackend {
 public:
  virtual ~LithoBackend() = default;
  virtual std::string name() const = 0;
  /// Build the SOCS kernel set for a grid_size x grid_size window at
  /// pixel_nm. Throws a typed Status on invalid optics/geometry or (TCC)
  /// when the captured-energy floor cannot be met.
  virtual SocsKernels build(const OpticsConfig& optics, std::int32_t grid_size,
                            std::int32_t pixel_nm) const = 0;
};

/// The current source-point SOCS path — the reference imaging model.
class AbbeBackend final : public LithoBackend {
 public:
  std::string name() const override { return "abbe"; }
  SocsKernels build(const OpticsConfig& optics, std::int32_t grid_size,
                    std::int32_t pixel_nm) const override;
};

/// Top-k TCC eigen-kernels of the Abbe-sampled source operator.
class TccBackend final : public LithoBackend {
 public:
  /// `num_kernels <= 0` selects the smallest k meeting the energy floor.
  explicit TccBackend(int num_kernels = 0, double min_captured_energy = 0.99,
                      TccOptions options = {});

  std::string name() const override;
  SocsKernels build(const OpticsConfig& optics, std::int32_t grid_size,
                    std::int32_t pixel_nm) const override;

 private:
  int num_kernels_;
  double min_captured_energy_;
  TccOptions options_;
};

/// Factory from a parsed spec.
std::unique_ptr<LithoBackend> make_litho_backend(const LithoBackendSpec& spec);

}  // namespace ganopc::litho
