// Optical system description for the partially coherent imaging model.
//
// The paper's lithography engine (lithosim_v4, ICCAD-2013 contest) ships
// pre-computed SOCS kernels from a proprietary 193nm immersion model. We
// rebuild the equivalent physics from first principles: an annular source
// sampled at discrete points (Abbe's method) and an ideal circular pupil.
// Each source point contributes one coherent kernel h_k with weight w_k,
// which is *exactly* the weighted sum-of-coherent-systems of Eq. (1)-(2)
// with N_h = 24.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace ganopc::litho {

/// How the SOCS kernels of Eq. (2) are produced.
enum class KernelMethod {
  AbbeSource,  ///< one coherent kernel per sampled source point (default)
  TccSvd,      ///< Hopkins TCC eigendecomposition ([20]; fewer kernels needed)
};

struct OpticsConfig {
  double wavelength_nm = 193.0;  ///< ArF excimer
  double na = 1.35;              ///< immersion numerical aperture
  double sigma_inner = 0.5;      ///< annular source inner partial coherence
  double sigma_outer = 0.8;      ///< annular source outer partial coherence
  int num_kernels = 24;          ///< N_h in Eq. (2); the paper picks 24
  double defocus_nm = 0.0;       ///< optional defocus aberration
  KernelMethod kernel_method = KernelMethod::AbbeSource;

  /// Pupil cutoff spatial frequency NA / lambda (cycles per nm).
  double cutoff() const { return na / wavelength_nm; }

  bool valid() const {
    // Finiteness first: a NaN/Inf smuggled into any optical parameter would
    // poison every kernel (and the TCC eigensolve) silently — NaN compares
    // false, so the range checks alone would not catch wavelength or defocus.
    return std::isfinite(wavelength_nm) && std::isfinite(na) &&
           std::isfinite(sigma_inner) && std::isfinite(sigma_outer) &&
           std::isfinite(defocus_nm) && wavelength_nm > 0 && na > 0 &&
           sigma_inner >= 0 && sigma_outer > sigma_inner && sigma_outer <= 1.0 &&
           num_kernels > 0;
  }
};

/// One Abbe source sample: an oblique plane-wave direction and its weight.
struct SourcePoint {
  double fx = 0.0;   ///< frequency offset (cycles/nm)
  double fy = 0.0;
  double weight = 0.0;
};

/// Sample the annular source at `count` points on concentric rings.
/// Weights are uniform and sum to 1. Points come in +/- pairs so the sampled
/// source, like the physical one, is symmetric under inversion.
std::vector<SourcePoint> sample_annular_source(const OpticsConfig& config, int count);

}  // namespace ganopc::litho
