#include "litho/lithosim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/parallel.hpp"
#include "common/status.hpp"
#include "fft/fft.hpp"
#include "fft/fft_kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ganopc::litho {

namespace {

using fft::cfloat;

/// Per-thread scratch for the workspace-free convenience wrappers. Worker
/// threads of the shared pool keep their workspace warm across batches.
LithoWorkspace& tls_workspace() {
  static thread_local LithoWorkspace ws;
  return ws;
}

/// Point `g` at the simulator geometry without reallocating when the pixel
/// count already matches.
void reshape_like(geom::Grid& g, std::int32_t n, std::int32_t pixel_nm,
                  const geom::Grid& src) {
  g.rows = n;
  g.cols = n;
  g.pixel_nm = pixel_nm;
  g.origin_x = src.origin_x;
  g.origin_y = src.origin_y;
  g.data.resize(static_cast<std::size_t>(n) * n);
}

// The one SOCS forward implementation (Eq. 2): mask FFT, per-kernel coherent
// fields A_k = IFFT(H_k_hat .* mask_hat) parallelized over kernels, then the
// intensity I = sum_k w_k |A_k|^2 reduced per pixel in ascending-k order.
// Blocks only partition pixels/kernels — every thread count produces
// bit-identical output. Shared by LithoSim::aerial_into, the gradient's
// forward pass and threshold calibration, so tests cover one implementation.
void socs_forward(const SocsKernels& kernels, const geom::Grid& mask,
                  geom::Grid& aerial_image, LithoWorkspace& ws) {
  const std::int32_t n = kernels.grid_size();
  const auto un = static_cast<std::size_t>(n);
  const std::size_t npx = un * un;
  const int num_k = kernels.count();
  if (ws.ensure_forward(num_k, npx) && obs::metrics_enabled())
    obs::counter("litho.workspace.grows").inc();

  // Masks are real, so the forward transform runs the half-cost real-input
  // path; the full Hermitian spectrum comes out in the usual layout.
  fft::rfft_2d(mask.data.data(), ws.mask_hat.data(), un, un);

  for (int k = 0; k < num_k; ++k) ws.weights[static_cast<std::size_t>(k)] = kernels.weight(k);

  const fft::VecOps& ops = fft::vec_ops();
  // Coherent fields: one kernel per unit of work; each worker's nested FFT
  // parallelism degrades to serial inside the pool (no oversubscription).
  ThreadPool::instance().parallel_blocks(
      static_cast<std::size_t>(num_k),
      [&](std::size_t /*block*/, std::size_t kb, std::size_t ke) {
        for (std::size_t k = kb; k < ke; ++k) {
          auto& field = ws.fields[k];
          const auto& hat = kernels.freq_kernel(static_cast<int>(k));
          ops.cmul(ws.mask_hat.data(), hat.data(), field.data(), npx);
          fft::fft_2d(field.data(), un, un, true);
        }
      });

  reshape_like(aerial_image, n, kernels.pixel_nm(), mask);
  parallel_for_chunks(0, npx, [&](std::size_t b, std::size_t e) {
    double* acc = ws.acc.data();
    std::fill(acc + b, acc + e, 0.0);
    for (int k = 0; k < num_k; ++k) {
      const double w = ws.weights[static_cast<std::size_t>(k)];
      const cfloat* f = ws.fields[static_cast<std::size_t>(k)].data();
      ops.norm_weighted_accum(f + b, w, acc + b, e - b);
    }
    float* out = aerial_image.data.data();
    for (std::size_t i = b; i < e; ++i) out[i] = static_cast<float>(acc[i]);
  }, /*serial_threshold=*/1024);
}

// Threshold calibration: image a wide vertical stripe and take the intensity
// at its geometric edge, so large features print at drawn size. Runs through
// the same socs_forward path as every aerial image.
float calibrate_threshold(const SocsKernels& kernels) {
  const std::int32_t n = kernels.grid_size();
  geom::Grid stripe(n, n, kernels.pixel_nm());
  const std::int32_t c0 = n / 4, c1 = 3 * n / 4;
  for (std::int32_t r = 0; r < n; ++r)
    for (std::int32_t c = c0; c < c1; ++c) stripe.at(r, c) = 1.0f;

  geom::Grid intensity;
  LithoWorkspace ws;
  socs_forward(kernels, stripe, intensity, ws);
  // The geometric edge lies between pixel centers c0-1 and c0; average the
  // two along the stripe's mid row.
  const float* mid = intensity.data.data() + static_cast<std::size_t>(n / 2) * n;
  return 0.5f * (mid[c0 - 1] + mid[c0]);
}

}  // namespace

LithoSim::LithoSim(const OpticsConfig& optics, const ResistConfig& resist,
                   std::int32_t grid_size, std::int32_t pixel_nm)
    : kernels_(optics, grid_size, pixel_nm), resist_(resist) {
  GANOPC_CHECK(resist.sigmoid_alpha > 0.0f);
  threshold_ = resist.threshold > 0.0f ? resist.threshold : calibrate_threshold(kernels_);
}

LithoSim::LithoSim(SocsKernels kernels, const ResistConfig& resist)
    : kernels_(std::move(kernels)), resist_(resist) {
  GANOPC_CHECK(resist.sigmoid_alpha > 0.0f);
  threshold_ = resist.threshold > 0.0f ? resist.threshold : calibrate_threshold(kernels_);
}

void LithoSim::check_geometry(const geom::Grid& g) const {
  GANOPC_TYPED_CHECK(StatusCode::kInvalidInput,
                     g.rows == grid_size() && g.cols == grid_size(),
                     "grid " << g.rows << "x" << g.cols
                             << " does not match simulator " << grid_size() << "x"
                             << grid_size());
}

void LithoSim::aerial_into(const geom::Grid& mask, geom::Grid& aerial_image,
                           LithoWorkspace& ws) const {
  GANOPC_OBS_SPAN("litho.aerial");
  check_geometry(mask);
  socs_forward(kernels_, mask, aerial_image, ws);
}

geom::Grid LithoSim::aerial(const geom::Grid& mask) const {
  geom::Grid out;
  aerial_into(mask, out, tls_workspace());
  return out;
}

geom::Grid LithoSim::print(const geom::Grid& aerial_image, float dose) const {
  check_geometry(aerial_image);
  GANOPC_CHECK(dose > 0.0f);
  geom::Grid z = aerial_image;
  for (auto& v : z.data) v = (v * dose >= threshold_) ? 1.0f : 0.0f;
  return z;
}

geom::Grid LithoSim::simulate(const geom::Grid& mask, float dose) const {
  GANOPC_OBS_SPAN("litho.simulate");
  return print(aerial(mask), dose);
}

std::vector<geom::Grid> LithoSim::simulate_batch(std::span<const geom::Grid> masks,
                                                 float dose) const {
  GANOPC_OBS_SPAN("litho.simulate_batch");
  if (obs::metrics_enabled())
    obs::counter("litho.simulate_batch.masks").inc(masks.size());
  GANOPC_CHECK(dose > 0.0f);
  for (const auto& m : masks) check_geometry(m);
  std::vector<geom::Grid> prints(masks.size());
  // Threshold 2: a single mask keeps the calling thread and its intra-mask
  // (per-kernel) parallelism; larger batches parallelize across masks, each
  // worker reusing its per-thread workspace. Output slot i only ever depends
  // on mask i, so scheduling cannot change results.
  parallel_for(0, masks.size(),
               [&](std::size_t i) { prints[i] = simulate(masks[i], dose); },
               /*serial_threshold=*/2);
  return prints;
}

geom::Grid LithoSim::relaxed_wafer(const geom::Grid& aerial_image, float dose) const {
  check_geometry(aerial_image);
  geom::Grid z = aerial_image;
  const float a = resist_.sigmoid_alpha;
  for (auto& v : z.data) v = 1.0f / (1.0f + std::exp(-a * (v * dose - threshold_)));
  return z;
}

LithoSim::ForwardResult LithoSim::forward_relaxed(const geom::Grid& mask_b,
                                                  const geom::Grid& target, float dose,
                                                  LithoWorkspace& ws) const {
  GANOPC_OBS_SPAN("litho.forward_relaxed");
  check_geometry(mask_b);
  check_geometry(target);
  GANOPC_CHECK(dose > 0.0f);
  ForwardResult result;
  socs_forward(kernels_, mask_b, result.aerial_image, ws);
  result.wafer_relaxed = relaxed_wafer(result.aerial_image, dose);
  double err = 0.0;
  for (std::size_t i = 0; i < target.data.size(); ++i) {
    const double d = static_cast<double>(result.wafer_relaxed.data[i]) - target.data[i];
    err += d * d;
  }
  result.error = err;
  return result;
}

LithoSim::ForwardResult LithoSim::forward_relaxed(const geom::Grid& mask_b,
                                                  const geom::Grid& target,
                                                  float dose) const {
  return forward_relaxed(mask_b, target, dose, tls_workspace());
}

void LithoSim::gradient_into(const geom::Grid& mask_b, const geom::Grid& target,
                             std::span<const float> doses, geom::Grid& grad_out,
                             LithoWorkspace& ws) const {
  GANOPC_OBS_SPAN("litho.gradient");
  check_geometry(mask_b);
  check_geometry(target);
  GANOPC_CHECK_MSG(!doses.empty(), "gradient needs at least one dose");
  for (const float d : doses) GANOPC_CHECK(d > 0.0f);
  const std::int32_t n = grid_size();
  const auto un = static_cast<std::size_t>(n);
  const std::size_t npx = un * un;
  const int num_k = kernels_.count();

  // Forward fields A_k are computed once and shared by every dose corner.
  socs_forward(kernels_, mask_b, ws.aerial_scratch, ws);
  if (ws.ensure_adjoint(num_k, npx) && obs::metrics_enabled())
    obs::counter("litho.workspace.grows").inc();

  double* acc = ws.acc.data();
  std::fill(acc, acc + npx, 0.0);
  const float alpha = resist_.sigmoid_alpha;
  // Dose corners accumulate serially (fixed order); within a dose, the
  // per-kernel adjoint transforms are independent and the per-pixel sum runs
  // in ascending-k order — deterministic at any thread count.
  for (const float dose : doses) {
    // X = dE/dI = 2 (Z - Z_t) .* alpha * dose * Z (1 - Z)   (real-valued);
    // the dose factor comes from Z = sigmoid(alpha (dose*I - I_th)).
    parallel_for_chunks(0, npx, [&](std::size_t b, std::size_t e) {
      const float* intensity = ws.aerial_scratch.data.data();
      float* x = ws.x.data();
      for (std::size_t i = b; i < e; ++i) {
        const float zi =
            1.0f / (1.0f + std::exp(-alpha * (intensity[i] * dose - threshold_)));
        x[i] = 2.0f * (zi - target.data[i]) * alpha * dose * zi * (1.0f - zi);
      }
    }, /*serial_threshold=*/1024);

    // dE/dM = sum_k w_k * 2 Re( (X .* conj(A_k)) correlated with h_k )
    //       = sum_k w_k * 2 Re( IFFT( FFT(X .* conj(A_k)) .* H_k_hat(-f) ) ).
    // This is the frequency-domain form of Eq. (14)'s two convolution terms
    // (conv with H and with H*), fused via the 2 Re(.) identity.
    const fft::VecOps& ops = fft::vec_ops();
    ThreadPool::instance().parallel_blocks(
        static_cast<std::size_t>(num_k),
        [&](std::size_t /*block*/, std::size_t kb, std::size_t ke) {
          for (std::size_t k = kb; k < ke; ++k) {
            auto& buf = ws.adjoint[k];
            const auto& field = ws.fields[k];
            ops.cmul_conj_real(ws.x.data(), field.data(), buf.data(), npx);
            fft::fft_2d(buf.data(), un, un, false);
            const auto& hat_flipped = kernels_.freq_kernel_flipped(static_cast<int>(k));
            ops.cmul(buf.data(), hat_flipped.data(), buf.data(), npx);
            fft::fft_2d(buf.data(), un, un, true);
          }
        });

    parallel_for_chunks(0, npx, [&](std::size_t b, std::size_t e) {
      for (int k = 0; k < num_k; ++k) {
        const double w2 = 2.0 * ws.weights[static_cast<std::size_t>(k)];
        const cfloat* buf = ws.adjoint[static_cast<std::size_t>(k)].data();
        ops.real_weighted_accum(buf + b, w2, acc + b, e - b);
      }
    }, /*serial_threshold=*/1024);
  }

  reshape_like(grad_out, n, pixel_nm(), mask_b);
  const double inv_d = 1.0 / static_cast<double>(doses.size());
  for (std::size_t i = 0; i < npx; ++i)
    grad_out.data[i] = static_cast<float>(acc[i] * inv_d);

  // Robustness tier: simulate the numeric faults (denormal blow-ups, FFT
  // overflow) that ILILT reports on hard patterns. The ILT watchdog must
  // catch this and terminate Diverged instead of corrupting the descent.
  if (GANOPC_FAILPOINT("litho.gradient_nan"))
    grad_out.data[0] = std::numeric_limits<float>::quiet_NaN();
}

geom::Grid LithoSim::gradient(const geom::Grid& mask_b, const geom::Grid& target,
                              float dose) const {
  geom::Grid grad;
  const float doses[1] = {dose};
  gradient_into(mask_b, target, doses, grad, tls_workspace());
  return grad;
}

LithoSim::PvBand LithoSim::pv_band(const geom::Grid& mask, float dose_delta) const {
  GANOPC_OBS_SPAN("litho.pv_band");
  GANOPC_CHECK(dose_delta > 0.0f && dose_delta < 1.0f);
  const geom::Grid aerial_image = aerial(mask);
  PvBand band;
  band.outer = print(aerial_image, 1.0f + dose_delta);
  band.inner = print(aerial_image, 1.0f - dose_delta);

  // A +/-2% dose error moves contours by only a few nanometers — well below
  // one simulation pixel — so the band area is measured on a band-limited
  // super-sampled intensity field (~2nm effective pixels). The aerial image
  // carries at most twice the pupil bandwidth, far below grid Nyquist, so
  // Fourier zero-padding reconstructs the continuous field exactly.
  std::size_t factor = 1;
  while (pixel_nm() / static_cast<std::int32_t>(factor) > 2) factor *= 2;
  const auto n = static_cast<std::size_t>(grid_size());
  const std::vector<float> fine =
      fft::fourier_upsample_2d(aerial_image.data, n, n, factor);
  const float lo = threshold_ / (1.0f + dose_delta);
  const float hi = threshold_ / (1.0f - dose_delta);
  std::int64_t diff_px = 0;
  for (const float v : fine) diff_px += (v >= lo) != (v >= hi);
  const double fine_pixel = static_cast<double>(pixel_nm()) / static_cast<double>(factor);
  band.area_nm2 =
      static_cast<std::int64_t>(std::llround(diff_px * fine_pixel * fine_pixel));
  return band;
}

double LithoSim::l2_error(const geom::Grid& mask, const geom::Grid& target) const {
  check_geometry(target);
  const geom::Grid z = simulate(mask);
  double err = 0.0;
  for (std::size_t i = 0; i < z.data.size(); ++i) {
    const double d = static_cast<double>(z.data[i]) - target.data[i];
    err += d * d;
  }
  return err;
}

}  // namespace ganopc::litho
