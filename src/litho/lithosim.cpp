#include "litho/lithosim.hpp"

#include <cmath>

#include "common/error.hpp"
#include "fft/fft.hpp"

namespace ganopc::litho {

namespace {

using fft::cfloat;

// Threshold calibration: image a wide vertical stripe and take the intensity
// at its geometric edge, so large features print at drawn size.
float calibrate_threshold(const SocsKernels& kernels) {
  const std::int32_t n = kernels.grid_size();
  geom::Grid stripe(n, n, kernels.pixel_nm());
  const std::int32_t c0 = n / 4, c1 = 3 * n / 4;
  for (std::int32_t r = 0; r < n; ++r)
    for (std::int32_t c = c0; c < c1; ++c) stripe.at(r, c) = 1.0f;

  // Inline aerial computation (cannot call LithoSim::aerial during
  // construction).
  std::vector<cfloat> mask_hat(stripe.data.begin(), stripe.data.end());
  fft::fft_2d(mask_hat, static_cast<std::size_t>(n), static_cast<std::size_t>(n), false);
  std::vector<double> intensity(static_cast<std::size_t>(n) * n, 0.0);
  std::vector<cfloat> field(mask_hat.size());
  for (int k = 0; k < kernels.count(); ++k) {
    const auto& hat = kernels.freq_kernel(k);
    for (std::size_t i = 0; i < field.size(); ++i) field[i] = mask_hat[i] * hat[i];
    fft::fft_2d(field, static_cast<std::size_t>(n), static_cast<std::size_t>(n), true);
    const double w = kernels.weight(k);
    for (std::size_t i = 0; i < field.size(); ++i) intensity[i] += w * std::norm(field[i]);
  }
  // The geometric edge lies between pixel centers c0-1 and c0; average the
  // two along the stripe's mid row.
  const std::size_t row = static_cast<std::size_t>(n / 2) * n;
  const double edge =
      0.5 * (intensity[row + static_cast<std::size_t>(c0) - 1] +
             intensity[row + static_cast<std::size_t>(c0)]);
  return static_cast<float>(edge);
}

}  // namespace

LithoSim::LithoSim(const OpticsConfig& optics, const ResistConfig& resist,
                   std::int32_t grid_size, std::int32_t pixel_nm)
    : kernels_(optics, grid_size, pixel_nm), resist_(resist) {
  GANOPC_CHECK(resist.sigmoid_alpha > 0.0f);
  threshold_ = resist.threshold > 0.0f ? resist.threshold : calibrate_threshold(kernels_);
}

void LithoSim::check_geometry(const geom::Grid& g) const {
  GANOPC_CHECK_MSG(g.rows == grid_size() && g.cols == grid_size(),
                   "grid " << g.rows << "x" << g.cols << " does not match simulator "
                           << grid_size() << "x" << grid_size());
}

void LithoSim::fields(const geom::Grid& mask, std::vector<std::vector<cfloat>>& a_k,
                      geom::Grid& aerial_image) const {
  const std::int32_t n = grid_size();
  const auto npx = static_cast<std::size_t>(n) * n;
  std::vector<cfloat> mask_hat(mask.data.begin(), mask.data.end());
  fft::fft_2d(mask_hat, static_cast<std::size_t>(n), static_cast<std::size_t>(n), false);

  aerial_image = geom::Grid(n, n, pixel_nm(), mask.origin_x, mask.origin_y);
  a_k.assign(static_cast<std::size_t>(kernels_.count()), {});
  std::vector<double> intensity(npx, 0.0);
  for (int k = 0; k < kernels_.count(); ++k) {
    auto& field = a_k[static_cast<std::size_t>(k)];
    field.resize(npx);
    const auto& hat = kernels_.freq_kernel(k);
    for (std::size_t i = 0; i < npx; ++i) field[i] = mask_hat[i] * hat[i];
    fft::fft_2d(field.data(), static_cast<std::size_t>(n), static_cast<std::size_t>(n),
                true);
    const double w = kernels_.weight(k);
    for (std::size_t i = 0; i < npx; ++i) intensity[i] += w * std::norm(field[i]);
  }
  for (std::size_t i = 0; i < npx; ++i)
    aerial_image.data[i] = static_cast<float>(intensity[i]);
}

geom::Grid LithoSim::aerial(const geom::Grid& mask) const {
  check_geometry(mask);
  std::vector<std::vector<cfloat>> a_k;
  geom::Grid out;
  fields(mask, a_k, out);
  return out;
}

geom::Grid LithoSim::print(const geom::Grid& aerial_image, float dose) const {
  check_geometry(aerial_image);
  GANOPC_CHECK(dose > 0.0f);
  geom::Grid z = aerial_image;
  for (auto& v : z.data) v = (v * dose >= threshold_) ? 1.0f : 0.0f;
  return z;
}

geom::Grid LithoSim::simulate(const geom::Grid& mask, float dose) const {
  return print(aerial(mask), dose);
}

geom::Grid LithoSim::relaxed_wafer(const geom::Grid& aerial_image, float dose) const {
  check_geometry(aerial_image);
  geom::Grid z = aerial_image;
  const float a = resist_.sigmoid_alpha;
  for (auto& v : z.data) v = 1.0f / (1.0f + std::exp(-a * (v * dose - threshold_)));
  return z;
}

LithoSim::ForwardResult LithoSim::forward_relaxed(const geom::Grid& mask_b,
                                                  const geom::Grid& target,
                                                  float dose) const {
  check_geometry(mask_b);
  check_geometry(target);
  GANOPC_CHECK(dose > 0.0f);
  ForwardResult result;
  std::vector<std::vector<cfloat>> a_k;
  fields(mask_b, a_k, result.aerial_image);
  result.wafer_relaxed = relaxed_wafer(result.aerial_image, dose);
  double err = 0.0;
  for (std::size_t i = 0; i < target.data.size(); ++i) {
    const double d = static_cast<double>(result.wafer_relaxed.data[i]) - target.data[i];
    err += d * d;
  }
  result.error = err;
  return result;
}

geom::Grid LithoSim::gradient(const geom::Grid& mask_b, const geom::Grid& target,
                              float dose) const {
  check_geometry(mask_b);
  check_geometry(target);
  GANOPC_CHECK(dose > 0.0f);
  const std::int32_t n = grid_size();
  const auto npx = static_cast<std::size_t>(n) * n;

  std::vector<std::vector<cfloat>> a_k;
  geom::Grid aerial_image;
  fields(mask_b, a_k, aerial_image);
  const geom::Grid z = relaxed_wafer(aerial_image, dose);

  // X = dE/dI = 2 (Z - Z_t) .* alpha * dose * Z (1 - Z)   (real-valued);
  // the dose factor comes from Z = sigmoid(alpha (dose*I - I_th)).
  std::vector<float> x(npx);
  const float alpha = resist_.sigmoid_alpha;
  for (std::size_t i = 0; i < npx; ++i) {
    const float zi = z.data[i];
    x[i] = 2.0f * (zi - target.data[i]) * alpha * dose * zi * (1.0f - zi);
  }

  // dE/dM = sum_k w_k * 2 Re( (X .* conj(A_k)) correlated with h_k )
  //       = sum_k w_k * 2 Re( IFFT( FFT(X .* conj(A_k)) .* H_k_hat(-f) ) ).
  // This is the frequency-domain form of Eq. (14)'s two convolution terms
  // (conv with H and with H*), fused via the 2 Re(.) identity.
  geom::Grid grad(n, n, pixel_nm(), mask_b.origin_x, mask_b.origin_y);
  std::vector<double> acc(npx, 0.0);
  std::vector<cfloat> buf(npx);
  for (int k = 0; k < kernels_.count(); ++k) {
    const auto& field = a_k[static_cast<std::size_t>(k)];
    for (std::size_t i = 0; i < npx; ++i) buf[i] = x[i] * std::conj(field[i]);
    fft::fft_2d(buf.data(), static_cast<std::size_t>(n), static_cast<std::size_t>(n),
                false);
    const auto& hat_flipped = kernels_.freq_kernel_flipped(k);
    for (std::size_t i = 0; i < npx; ++i) buf[i] *= hat_flipped[i];
    fft::fft_2d(buf.data(), static_cast<std::size_t>(n), static_cast<std::size_t>(n),
                true);
    const double w = 2.0 * kernels_.weight(k);
    for (std::size_t i = 0; i < npx; ++i) acc[i] += w * buf[i].real();
  }
  for (std::size_t i = 0; i < npx; ++i) grad.data[i] = static_cast<float>(acc[i]);
  return grad;
}

LithoSim::PvBand LithoSim::pv_band(const geom::Grid& mask, float dose_delta) const {
  GANOPC_CHECK(dose_delta > 0.0f && dose_delta < 1.0f);
  const geom::Grid aerial_image = aerial(mask);
  PvBand band;
  band.outer = print(aerial_image, 1.0f + dose_delta);
  band.inner = print(aerial_image, 1.0f - dose_delta);

  // A +/-2% dose error moves contours by only a few nanometers — well below
  // one simulation pixel — so the band area is measured on a band-limited
  // super-sampled intensity field (~2nm effective pixels). The aerial image
  // carries at most twice the pupil bandwidth, far below grid Nyquist, so
  // Fourier zero-padding reconstructs the continuous field exactly.
  std::size_t factor = 1;
  while (pixel_nm() / static_cast<std::int32_t>(factor) > 2) factor *= 2;
  const auto n = static_cast<std::size_t>(grid_size());
  const std::vector<float> fine =
      fft::fourier_upsample_2d(aerial_image.data, n, n, factor);
  const float lo = threshold_ / (1.0f + dose_delta);
  const float hi = threshold_ / (1.0f - dose_delta);
  std::int64_t diff_px = 0;
  for (const float v : fine) diff_px += (v >= lo) != (v >= hi);
  const double fine_pixel = static_cast<double>(pixel_nm()) / static_cast<double>(factor);
  band.area_nm2 =
      static_cast<std::int64_t>(std::llround(diff_px * fine_pixel * fine_pixel));
  return band;
}

double LithoSim::l2_error(const geom::Grid& mask, const geom::Grid& target) const {
  check_geometry(target);
  const geom::Grid z = simulate(mask);
  double err = 0.0;
  for (std::size_t i = 0; i < z.data.size(); ++i) {
    const double d = static_cast<double>(z.data[i]) - target.data[i];
    err += d * d;
  }
  return err;
}

}  // namespace ganopc::litho
