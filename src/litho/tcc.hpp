// Transmission cross coefficient (TCC) kernel factory — the Hopkins/SVD
// route of Eq. (1) ([19] Hopkins, [20] Cobb).
//
// The partially coherent image is I(x) = sum over (f1, f2) of
//   TCC(f1, f2) M_hat(f1) M_hat*(f2) e^{2 pi i (f1 - f2) x},
// with TCC(f1, f2) = integral J(s) P(s + f1) P*(s + f2) ds. Diagonalizing
// the Hermitian PSD TCC operator gives the optimal sum-of-coherent-systems:
//   I = sum_k lambda_k |M (x) phi_k|^2,
// which converges in far fewer kernels than direct Abbe source sampling —
// the reason production simulators ship SVD kernels (as lithosim_v4 does).
//
// The operator is assembled on the pupil-limited frequency support (a disk
// of |f| < (1 + sigma_out) NA/lambda, a few thousand samples on our grids)
// from a dense source discretization, then the leading eigenpairs are
// extracted by subspace iteration.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "litho/optics.hpp"

namespace ganopc::litho {

struct TccKernelSet {
  /// Frequency-domain kernels on the full grid (unshifted FFT layout).
  std::vector<std::vector<std::complex<float>>> kernels_hat;
  /// Eigenvalues lambda_k (nonincreasing, nonnegative); the SOCS weights.
  std::vector<float> weights;
  /// Fraction of the TCC trace captured by the retained kernels in [0, 1].
  double captured_energy = 0.0;
};

struct TccOptions {
  int source_samples = 256;   ///< dense source discretization for the TCC
  int power_iterations = 40;  ///< subspace-iteration sweeps
  std::uint64_t seed = 7;     ///< deterministic start block
  /// When non-empty, assemble the TCC from exactly these source points
  /// (weights need not sum to 1; they are normalized) instead of the dense
  /// polar discretization. Passing the Abbe sampling here makes the truncated
  /// SOCS converge to the Abbe reference image as k grows, so the retained
  /// trace fraction (`captured_energy`) bounds the Abbe-vs-TCC image error —
  /// the property the backend-equivalence tier pins (DESIGN.md §15).
  std::vector<SourcePoint> source_points;
};

/// Compute the top `num_kernels` TCC eigen-kernels for the given optics and
/// simulation grid. grid_size must be a power of two and the pixel fine
/// enough to hold the pupil support (same constraint as SocsKernels).
TccKernelSet compute_tcc_kernels(const OpticsConfig& config, std::int32_t grid_size,
                                 std::int32_t pixel_nm, int num_kernels,
                                 const TccOptions& options = {});

}  // namespace ganopc::litho
