// SOCS kernel set on a concrete simulation grid.
//
// Kernels are stored in the frequency domain (unshifted FFT layout), so the
// aerial image of Eq. (2) is one forward FFT of the mask, num_kernels complex
// multiplies, and num_kernels inverse FFTs:
//   A_k = IFFT( H_k_hat .* FFT(M) ),   I = sum_k w_k |A_k|^2.
// Each H_k_hat is a pupil disk shifted by its Abbe source point, with an
// optional paraxial defocus phase. Flipped kernels H_k_hat(-f) are
// precomputed for the ILT gradient (Eq. 14).
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "litho/optics.hpp"
#include "litho/tcc.hpp"

namespace ganopc::litho {

class SocsKernels {
 public:
  /// Build kernels for a grid_size x grid_size simulation window with the
  /// given physical pixel size. grid_size must be a power of two.
  SocsKernels(const OpticsConfig& config, std::int32_t grid_size, std::int32_t pixel_nm);

  /// Adopt a prebuilt kernel set (e.g. truncated TCC eigen-kernels from a
  /// litho backend). The set's weights must be nonincreasing and finite; the
  /// flipped kernels for the adjoint pass are derived here so every consumer
  /// of the hot paths sees the same invariants as the Abbe constructor.
  SocsKernels(const OpticsConfig& config, std::int32_t grid_size,
              std::int32_t pixel_nm, TccKernelSet set);

  std::int32_t grid_size() const { return grid_; }
  std::int32_t pixel_nm() const { return pixel_nm_; }
  int count() const { return static_cast<int>(weights_.size()); }
  const OpticsConfig& config() const { return config_; }

  /// Fraction of the imaging operator's trace the kernel set retains, in
  /// [0, 1]. Exactly 1 for the Abbe construction (every sampled source point
  /// keeps its kernel); < 1 for truncated TCC sets, where `1 - captured
  /// energy` bounds the relative aerial-image L2 error against the
  /// untruncated reference (DESIGN.md §15).
  double captured_energy() const { return captured_energy_; }

  /// Frequency-domain kernel k (grid*grid complex values, unshifted layout).
  const std::vector<std::complex<float>>& freq_kernel(int k) const;

  /// Frequency-domain kernel evaluated at negated frequencies,
  /// H_k_hat[(-f) mod N] — the transfer function of the flipped kernel.
  const std::vector<std::complex<float>>& freq_kernel_flipped(int k) const;

  float weight(int k) const { return weights_.at(static_cast<std::size_t>(k)); }

  /// Spatial-domain kernel (centered via fftshift) — used by tests and for
  /// kernel visualization; the hot paths never leave the frequency domain.
  std::vector<std::complex<float>> spatial_kernel(int k) const;

 private:
  void validate_geometry() const;
  void adopt(TccKernelSet set);

  OpticsConfig config_;
  std::int32_t grid_;
  std::int32_t pixel_nm_;
  double captured_energy_ = 1.0;
  std::vector<float> weights_;
  std::vector<std::vector<std::complex<float>>> freq_kernels_;
  std::vector<std::vector<std::complex<float>>> freq_kernels_flipped_;
};

}  // namespace ganopc::litho
