#include "litho/optics.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ganopc::litho {

std::vector<SourcePoint> sample_annular_source(const OpticsConfig& config, int count) {
  GANOPC_CHECK_MSG(config.valid(), "invalid optics configuration");
  GANOPC_CHECK(count > 0);
  std::vector<SourcePoint> points;
  points.reserve(static_cast<std::size_t>(count));

  // Distribute the samples over concentric rings inside the annulus. Ring
  // count grows with the sample budget; each ring gets samples proportional
  // to its circumference so the source density stays uniform.
  const int rings = count <= 8 ? 1 : (count <= 24 ? 2 : 3);
  const double cutoff = config.cutoff();
  const double s_in = config.sigma_inner, s_out = config.sigma_outer;

  // Ring radii at the centers of equal-width annular strips.
  std::vector<double> radii(rings);
  for (int r = 0; r < rings; ++r)
    radii[r] = s_in + (s_out - s_in) * (r + 0.5) / rings;

  double circumference_total = 0.0;
  for (double rad : radii) circumference_total += rad;

  int assigned = 0;
  for (int r = 0; r < rings; ++r) {
    int n = (r == rings - 1)
                ? count - assigned
                : static_cast<int>(std::lround(count * radii[r] / circumference_total));
    n = std::max(n, 1);
    if (assigned + n > count) n = count - assigned;
    assigned += n;
    // Stagger rings so samples do not align radially.
    const double phase = M_PI * r / (rings * std::max(n, 1));
    for (int i = 0; i < n; ++i) {
      const double theta = 2.0 * M_PI * i / n + phase;
      SourcePoint p;
      p.fx = radii[r] * cutoff * std::cos(theta);
      p.fy = radii[r] * cutoff * std::sin(theta);
      points.push_back(p);
    }
    if (assigned == count) break;
  }
  GANOPC_CHECK(static_cast<int>(points.size()) == count);
  const double w = 1.0 / count;
  for (auto& p : points) p.weight = w;
  return points;
}

}  // namespace ganopc::litho
