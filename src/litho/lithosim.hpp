// LithoSim: the lithography simulation facade (stand-in for lithosim_v4).
//
// Pipeline (paper Eq. (2)-(3), (11)-(14)):
//   aerial   I = sum_k w_k |M (x) h_k|^2          — Hopkins / SOCS
//   print    Z = 1[I * dose >= I_th]              — constant-threshold resist
//   relaxed  Z = sigmoid(alpha * (I - I_th))      — Eq. (12) for ILT
//   gradient dE/dM_b for E = ||Z - Z_t||_2^2      — Eq. (14) core
//   pv_band  XOR of prints at dose 1 +/- delta    — Table 2 "PVB" column
//
// All images are geom::Grid at the simulator's grid_size/pixel_nm geometry.
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "geometry/grid.hpp"
#include "litho/kernels.hpp"
#include "litho/workspace.hpp"

namespace ganopc::litho {

struct ResistConfig {
  /// Exposure threshold I_th. Set <= 0 to auto-calibrate so that the edge of
  /// a large feature prints exactly in place (recommended).
  float threshold = -1.0f;
  /// Steepness of the relaxed resist sigmoid (alpha in Eq. (12)).
  float sigmoid_alpha = 50.0f;
};

class LithoSim {
 public:
  LithoSim(const OpticsConfig& optics, const ResistConfig& resist,
           std::int32_t grid_size, std::int32_t pixel_nm);

  /// Adopt a prebuilt kernel set (from a litho backend, DESIGN.md §15). The
  /// resist threshold is auto-calibrated against *these* kernels unless the
  /// config pins one, so each backend prints a wide feature edge in place.
  LithoSim(SocsKernels kernels, const ResistConfig& resist);

  const SocsKernels& kernels() const { return kernels_; }
  std::int32_t grid_size() const { return kernels_.grid_size(); }
  std::int32_t pixel_nm() const { return kernels_.pixel_nm(); }
  float threshold() const { return threshold_; }
  float sigmoid_alpha() const { return resist_.sigmoid_alpha; }

  /// Aerial image of a (possibly continuous-valued) mask in [0, 1].
  /// Convenience wrapper over `aerial_into` using a per-thread workspace.
  geom::Grid aerial(const geom::Grid& mask) const;

  /// Aerial image into a caller-owned output grid using caller-owned scratch
  /// buffers; repeated calls allocate nothing once `ws` is warm. The SOCS
  /// per-kernel loop runs on the shared thread pool with a fixed-order
  /// per-pixel reduction: results are bit-identical at any thread count.
  void aerial_into(const geom::Grid& mask, geom::Grid& aerial_image,
                   LithoWorkspace& ws) const;

  /// Hard resist print of an aerial image at the given dose.
  geom::Grid print(const geom::Grid& aerial_image, float dose = 1.0f) const;

  /// aerial + print in one call.
  geom::Grid simulate(const geom::Grid& mask, float dose = 1.0f) const;

  /// Hard resist prints of a batch of masks at one dose. Masks are simulated
  /// concurrently on the shared thread pool (each worker reuses a per-thread
  /// workspace); a single-element batch falls back to intra-mask parallelism.
  /// Output order matches input order regardless of scheduling.
  std::vector<geom::Grid> simulate_batch(std::span<const geom::Grid> masks,
                                         float dose = 1.0f) const;

  /// Relaxed wafer image (Eq. (12)).
  geom::Grid relaxed_wafer(const geom::Grid& aerial_image, float dose = 1.0f) const;

  struct ForwardResult {
    geom::Grid aerial_image;
    geom::Grid wafer_relaxed;
    double error = 0.0;  ///< ||Z_relaxed - Z_t||_2^2
  };

  /// Forward pass with the relaxed resist; used inside ILT iterations.
  /// `dose` scales the exposure (1.0 = nominal; PV-aware flows pass corner
  /// doses).
  ForwardResult forward_relaxed(const geom::Grid& mask_b, const geom::Grid& target,
                                float dose = 1.0f) const;

  /// Workspace-explicit variant of `forward_relaxed` (no scratch allocation).
  ForwardResult forward_relaxed(const geom::Grid& mask_b, const geom::Grid& target,
                                float dose, LithoWorkspace& ws) const;

  /// dE/dM_b with E = ||Z - Z_t||_2^2 through the relaxed resist — the
  /// convolutional core of Eq. (14), evaluated at the given dose. The caller
  /// chains the mask-relaxation factor beta * M_b (1 - M_b) (Eq. (13)) if it
  /// optimizes an unbounded mask parameterization.
  geom::Grid gradient(const geom::Grid& mask_b, const geom::Grid& target,
                      float dose = 1.0f) const;

  /// Eq. (14) gradient averaged over `doses` (the PV-aware dose-corner
  /// objective; a single dose reproduces `gradient`). The coherent fields A_k
  /// are computed once and shared by every dose corner, so D corners cost
  /// 1 + N_h + 2*D*N_h transforms instead of D * (1 + 3*N_h). Per-kernel
  /// loops run on the thread pool; reductions are fixed-order (deterministic
  /// at any thread count). `grad_out` is resized to the mask geometry.
  void gradient_into(const geom::Grid& mask_b, const geom::Grid& target,
                     std::span<const float> doses, geom::Grid& grad_out,
                     LithoWorkspace& ws) const;

  struct PvBand {
    geom::Grid outer;          ///< print at dose (1 + delta)
    geom::Grid inner;          ///< print at dose (1 - delta)
    std::int64_t area_nm2 = 0; ///< XOR area between the two contours
  };

  /// Process-variation band under +/- dose error (paper: +/-2%).
  PvBand pv_band(const geom::Grid& mask, float dose_delta = 0.02f) const;

  /// Squared L2 error between the nominal print of `mask` and `target`
  /// measured in pixels (multiply by pixel_nm^2 for nm^2).
  double l2_error(const geom::Grid& mask, const geom::Grid& target) const;

 private:
  void check_geometry(const geom::Grid& g) const;

  SocsKernels kernels_;
  ResistConfig resist_;
  float threshold_;
};

}  // namespace ganopc::litho
