// LithoWorkspace: reusable scratch buffers for the SOCS forward and adjoint
// passes.
//
// One aerial image costs 1 mask FFT + N_h kernel IFFTs; one gradient adds
// 2*N_h more transforms per dose corner. Allocating the mask spectrum, the
// N_h coherent-field buffers and the accumulators afresh on every call (as
// the seed engine did) dominates small-grid runtimes and fragments the heap
// under ILT's hundreds of iterations. A workspace owns those buffers and is
// resized only when the simulator geometry changes, so repeated
// `aerial_into` / `gradient_into` calls allocate nothing.
//
// A workspace is NOT thread-safe: it belongs to one simulation call at a
// time. The convenience wrappers in LithoSim use one workspace per thread;
// batch APIs give each worker its own.
#pragma once

#include <cstddef>
#include <vector>

#include "fft/fft.hpp"
#include "geometry/grid.hpp"

namespace ganopc::litho {

class LithoWorkspace {
 public:
  LithoWorkspace() = default;

  /// Total bytes currently held by the scratch buffers (diagnostics/tests).
  std::size_t bytes() const {
    std::size_t total = mask_hat.capacity() * sizeof(fft::cfloat) +
                        x.capacity() * sizeof(float) + acc.capacity() * sizeof(double);
    for (const auto& f : fields) total += f.capacity() * sizeof(fft::cfloat);
    for (const auto& f : adjoint) total += f.capacity() * sizeof(fft::cfloat);
    return total;
  }

  /// Grow (never shrink) the forward-pass buffers to `kernels` x `npx`.
  /// Returns true when any buffer actually grew — the caller bumps the
  /// `litho.workspace.grows` counter, which the engine contract test asserts
  /// stays flat across steady-state submits.
  bool ensure_forward(int kernels, std::size_t npx) {
    const std::size_t before = bytes();
    if (mask_hat.size() < npx) mask_hat.resize(npx);
    if (fields.size() < static_cast<std::size_t>(kernels))
      fields.resize(static_cast<std::size_t>(kernels));
    for (auto& f : fields)
      if (f.size() < npx) f.resize(npx);
    if (weights.size() < static_cast<std::size_t>(kernels))
      weights.resize(static_cast<std::size_t>(kernels));
    if (acc.size() < npx) acc.resize(npx);
    return bytes() != before;
  }

  /// Grow the adjoint-pass buffers (gradient only) to `kernels` x `npx`.
  /// Returns true when any buffer actually grew.
  bool ensure_adjoint(int kernels, std::size_t npx) {
    const std::size_t before = bytes();
    if (adjoint.size() < static_cast<std::size_t>(kernels))
      adjoint.resize(static_cast<std::size_t>(kernels));
    for (auto& f : adjoint)
      if (f.size() < npx) f.resize(npx);
    if (x.size() < npx) x.resize(npx);
    return bytes() != before;
  }

  /// FFT of the mask (unshifted layout).
  std::vector<fft::cfloat> mask_hat;
  /// Per-kernel coherent fields A_k = IFFT(H_k_hat .* mask_hat).
  std::vector<std::vector<fft::cfloat>> fields;
  /// Per-kernel adjoint buffers for the Eq. (14) backward pass. Kept separate
  /// from `fields` so multi-dose gradients can reuse the forward fields.
  std::vector<std::vector<fft::cfloat>> adjoint;
  /// Per-kernel SOCS weights, gathered once per call for tight inner loops.
  std::vector<float> weights;
  /// dE/dI (real), one entry per pixel.
  std::vector<float> x;
  /// Double-precision per-pixel accumulator (intensity, then gradient).
  std::vector<double> acc;
  /// Aerial image scratch for gradient calls (the caller never sees it).
  geom::Grid aerial_scratch;
};

}  // namespace ganopc::litho
