// obs_diff — standalone perf/quality regression gate (DESIGN.md §11).
//
//   obs_diff [--max-runtime-ratio R] [--max-quality-ratio R]
//            (--bench BASELINE.json CURRENT.json)...
//            (--ledger BASELINE.jsonl CURRENT.jsonl)...
//
// Diffs each baseline/current pair — BENCH_*.json files from bench_regress
// and/or JSONL run ledgers from --ledger-out — and prints one combined
// verdict. Exit codes: 0 PASS, 4 FAIL (regression), 2 usage, 1 I/O or parse
// error, so CI can tell a regression from a broken invocation. The verdict
// logic is shared with `ganopc report` (src/obs/regress), so the gate that
// blocks a PR and the report a developer runs locally always agree.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/ledger.hpp"
#include "obs/regress.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: obs_diff [--max-runtime-ratio R] [--max-quality-ratio R]\n"
               "                (--bench BASELINE CURRENT)...\n"
               "                (--ledger BASELINE CURRENT)...\n"
               "exit: 0 pass, 4 regression, 2 usage, 1 error\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ganopc;
  obs::RegressThresholds thresholds;
  std::vector<std::pair<std::string, std::string>> bench_pairs, ledger_pairs;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--max-runtime-ratio" && i + 1 < argc) {
      thresholds.max_runtime_ratio = std::atof(argv[++i]);
    } else if (flag == "--max-quality-ratio" && i + 1 < argc) {
      thresholds.max_quality_ratio = std::atof(argv[++i]);
    } else if (flag == "--bench" && i + 2 < argc) {
      bench_pairs.emplace_back(argv[i + 1], argv[i + 2]);
      i += 2;
    } else if (flag == "--ledger" && i + 2 < argc) {
      ledger_pairs.emplace_back(argv[i + 1], argv[i + 2]);
      i += 2;
    } else {
      return usage();
    }
  }
  if (bench_pairs.empty() && ledger_pairs.empty()) return usage();

  try {
    obs::RegressReport report;
    for (const auto& [base, cur] : bench_pairs) {
      std::printf("bench: %s vs %s\n", base.c_str(), cur.c_str());
      obs::compare_bench(obs::load_bench_file(base), obs::load_bench_file(cur),
                         thresholds, report);
    }
    for (const auto& [base, cur] : ledger_pairs) {
      std::printf("ledger: %s vs %s\n", base.c_str(), cur.c_str());
      obs::compare_ledgers(obs::read_ledger(base), obs::read_ledger(cur),
                           thresholds, report);
    }
    std::printf("%s", report.summary().c_str());
    return report.pass ? 0 : 4;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "obs_diff: error: %s\n", e.what());
    return 1;
  }
}
