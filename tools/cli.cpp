// ganopc — command-line driver for the mask-optimization flows.
//
//   ganopc synth    [--count N] [--seed S] [--out PREFIX]
//   ganopc sraf     --layout FILE [--out FILE]
//   ganopc ilt      --layout FILE [--grid N] [--iters N] [--out PREFIX]
//                   [--litho-backend abbe|tcc|tcc:K]
//   ganopc mbopc    --layout FILE [--grid N] [--iters N] [--out PREFIX]
//                   [--litho-backend SPEC]
//   ganopc eval     --layout FILE --mask FILE.pgm [--grid N]
//                   [--litho-backend SPEC]
//   ganopc train    [--scale NAME] [--dataset FILE] [--out FILE.bin]
//                   [--checkpoint FILE] [--checkpoint-every N] [--resume FILE]
//                   [--pretrain-iters N] [--train-iters N]
//   ganopc flow     --layout FILE --generator FILE.bin [--scale NAME]
//                   [--litho-backend SPEC]
//   ganopc optimize --layout FILE [--id NAME] [--scale NAME] [--grid N]
//                   [--iters N] [--generator FILE.bin] [--litho-backend SPEC]
//                   [--deadline-s SEC] [--max-retries N] [--fallback 0|1]
//                   [--accept-factor F] [--seed S] [--mask-out FILE.pgm]
//   ganopc batch    (--list FILE | --clips A,B,...) [--scale NAME] [--grid N]
//                   [--iters N] [--generator FILE.bin] [--journal FILE]
//                   [--resume FILE] [--manifest FILE.csv] [--deadline-s SEC]
//                   [--max-retries N] [--fallback 0|1] [--accept-factor F]
//                   [--deterministic-manifest 0|1] [--retry-backoff-s SEC]
//                   [--workers N] [--quarantine-kills K] [--task-deadline-s SEC]
//                   [--worker-mem-mb MB] [--worker-cpu-s SEC]
//                   [--litho-backend SPEC]
//   ganopc serve    [--port N | --socket PATH] [--host ADDR] [--port-file FILE]
//                   [--workers N] [--max-queue N] [--default-deadline-s SEC]
//                   [--max-deadline-s SEC] [--read-timeout-s SEC]
//                   [--write-timeout-s SEC] [--max-body-mb MB] [--max-conns N]
//                   [--breaker-kills K] [--breaker-cooldown-s SEC]
//                   [--drain-grace-s SEC] [--spool-dir DIR] [--scale NAME]
//                   [--grid N] [--iters N] [--generator FILE.bin]
//                   [--accept-factor F] [--max-retries N] [--fallback 0|1]
//                   [--quarantine-kills K] [--worker-mem-mb MB]
//                   [--worker-cpu-s SEC] [--litho-backend SPEC]
//   ganopc txt2gds  --layout FILE --out FILE.gds [--cell NAME] [--layer N]
//   ganopc gds2txt  --gds FILE.gds --out FILE.txt [--cell NAME] [--layer N]
//                   [--clipsize NM]
//   ganopc report   [--bench-base A[,B,...] --bench-cur A[,B,...]]
//                   [--ledger-base FILE --ledger-cur FILE]
//                   [--max-runtime-ratio R] [--max-quality-ratio R]
//
// Layout files use the text format of geom::Layout (clip/rect lines), GDSII
// (.gds extension, loaded with --clipsize window), or contest GLP; masks are
// 8-bit PGM at the simulation grid. `train` is crash-safe: Ctrl-C flushes a
// checkpoint that --resume continues from bit-identically (DESIGN.md §8).
//
// `optimize`, `batch` and `serve` all route through the same
// ganopc::engine::Engine session (DESIGN.md §15), so one clip produces
// bit-identical results no matter which front-end carried it in. The litho
// model behind any command is chosen with --litho-backend (DESIGN.md §15):
//   abbe    exact Abbe source-point kernels (the default, the reference)
//   tcc     TCC eigen-kernels auto-truncated at >= 99% captured energy
//   tcc:K   exactly K TCC eigen-kernels (caller owns the accuracy trade-off)
// `batch` is fault-tolerant: clips fail individually with typed codes in the
// manifest, and its journal makes a killed run resumable (DESIGN.md §9).
// With --workers N it adds *process* isolation (DESIGN.md §13): clips are
// dispatched to N sandboxed forked workers; a SIGSEGV/OOM/hang kills one
// worker (restarted with backoff), a clip that kills K workers in a row is
// quarantined with status Quarantined, and every crash a clip survives drops
// one rung off its GAN+ILT -> ILT -> MB-OPC degradation chain.
// Every command also accepts the observability flags (DESIGN.md §10-11):
//   --metrics-out FILE   Prometheus text snapshot (JSON when FILE is *.json)
//   --trace-out FILE     chrome://tracing span JSON
//   --ledger-out FILE    append-mode JSONL run ledger: run_start header with
//                        build version + config fingerprint, per-clip and
//                        per-iteration convergence events, run_end with a
//                        metrics snapshot; arms the flight recorder, which
//                        dumps FILE.crash.json on watchdog/fatal exits
// all default-off; enabling them costs one atomic flag check per site.
// `report` diffs a baseline BENCH_*.json (and/or ledger) pair against a
// current one and exits 0/4 on the PASS/FAIL regression verdict — the same
// verdict CI's regress-gate computes via tools/obs_diff.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/image_io.hpp"
#include "common/prng.hpp"
#include "common/status.hpp"
#include "common/version.hpp"
#include "core/config.hpp"
#include "core/dataset.hpp"
#include "core/discriminator.hpp"
#include "core/flow.hpp"
#include "core/generator.hpp"
#include "core/trainer.hpp"
#include "engine/batch_runner.hpp"
#include "engine/clip_io.hpp"
#include "engine/engine.hpp"
#include "geometry/raster.hpp"
#include "ilt/ilt.hpp"
#include "layout/synthesizer.hpp"
#include "litho/backend.hpp"
#include "litho/lithosim.hpp"
#include "mbopc/mbopc.hpp"
#include "metrics/printability.hpp"
#include "gds/gds.hpp"
#include "nn/serialize.hpp"
#include "obs/ledger.hpp"
#include "obs/regress.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "sraf/sraf.hpp"

namespace {

using namespace ganopc;

class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      GANOPC_CHECK_MSG(key.rfind("--", 0) == 0, "expected --flag, got '" << key << "'");
      GANOPC_CHECK_MSG(i + 1 < argc, "missing value for " << key);
      values_[key.substr(2)] = argv[++i];
    }
  }

  std::string get(const std::string& key, const std::string& fallback = "") const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      GANOPC_CHECK_MSG(!fallback.empty() || allow_empty_, "missing required --" << key);
      return fallback;
    }
    return it->second;
  }

  std::string require(const std::string& key) const {
    auto it = values_.find(key);
    GANOPC_CHECK_MSG(it != values_.end(), "missing required --" << key);
    return it->second;
  }

  int get_int(const std::string& key, int fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }

  double get_double(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
  bool allow_empty_ = true;
};

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Load a layout from text, GDSII, or contest GLP, by extension (the decode
// itself lives in engine/clip_io so every front-end agrees on the formats).
geom::Layout load_layout(const Args& args, const std::string& key = "layout") {
  return engine::load_layout_file(
      args.require(key), args.get_int("clipsize", 2048), args.get("cell", ""),
      static_cast<std::int16_t>(args.get_int("layer", 1)));
}

litho::LithoBackendSpec backend_spec(const Args& args) {
  return litho::parse_litho_backend(args.get("litho-backend", "abbe"));
}

// Standalone simulator for the direct commands (ilt/mbopc/eval), built
// through the same pluggable backend the Engine uses.
litho::LithoSim make_sim(const geom::Layout& clip, int grid, const Args& args) {
  GANOPC_CHECK_MSG(clip.clip().width() == clip.clip().height(),
                   "clip window must be square");
  GANOPC_CHECK_MSG(clip.clip().width() % grid == 0,
                   "grid " << grid << " does not divide the clip extent");
  litho::OpticsConfig optics;
  return litho::LithoSim(
      litho::make_litho_backend(backend_spec(args))
          ->build(optics, grid, clip.clip().width() / grid),
      litho::ResistConfig{});
}

void dump(const geom::Grid& g, const std::string& name) {
  engine::write_mask_pgm(name, g);
  std::printf("wrote %s (%dx%d @%dnm)\n", name.c_str(), g.cols, g.rows, g.pixel_nm);
}

int cmd_synth(const Args& args) {
  const int count = args.get_int("count", 4);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1847));
  const std::string prefix = args.get("out", "clip");
  layout::SynthesisConfig cfg;
  const auto library = layout::synthesize_library(cfg, static_cast<std::size_t>(count),
                                                  seed);
  for (std::size_t i = 0; i < library.size(); ++i) {
    const std::string path = prefix + std::to_string(i) + ".txt";
    library[i].save(path);
    std::printf("wrote %s (%zu shapes, %ld nm^2)\n", path.c_str(), library[i].size(),
                static_cast<long>(library[i].union_area()));
  }
  return 0;
}

int cmd_sraf(const Args& args) {
  const geom::Layout clip = load_layout(args);
  const auto result = sraf::insert_srafs(clip);
  const std::string out = args.get("out", "decorated.txt");
  result.decorated.save(out);
  std::printf("inserted %zu scatter bars; wrote %s\n", result.bars.size(), out.c_str());
  return 0;
}

int cmd_ilt(const Args& args) {
  const geom::Layout clip = load_layout(args);
  const litho::LithoSim sim = make_sim(clip, args.get_int("grid", 256), args);
  const geom::Grid target = geom::rasterize(clip, sim.pixel_nm(), /*threshold=*/true);
  ilt::IltConfig cfg;
  cfg.max_iterations = args.get_int("iters", 200);
  const ilt::IltEngine engine(sim, cfg);
  const ilt::IltResult result = engine.optimize(target);
  std::printf("ILT: %d iterations, %.2fs, hard L2 %.0f px (%.0f nm^2)\n",
              result.iterations, result.runtime_s, result.l2_px,
              result.l2_px * sim.pixel_nm() * sim.pixel_nm());
  const std::string prefix = args.get("out", "ilt");
  dump(target, prefix + "_target.pgm");
  dump(result.mask, prefix + "_mask.pgm");
  dump(sim.simulate(result.mask), prefix + "_wafer.pgm");
  return 0;
}

int cmd_mbopc(const Args& args) {
  const geom::Layout clip = load_layout(args);
  const litho::LithoSim sim = make_sim(clip, args.get_int("grid", 256), args);
  mbopc::MbOpcConfig cfg;
  cfg.max_iterations = args.get_int("iters", 12);
  const mbopc::MbOpcEngine engine(sim, cfg);
  const mbopc::MbOpcResult result = engine.optimize(clip);
  std::printf("MB-OPC: %d iterations (%s), max |EPE| %dnm, L2 %.0f px\n",
              result.iterations, result.converged ? "converged" : "budget exhausted",
              result.max_epe_nm, result.l2_px);
  const std::string prefix = args.get("out", "mbopc");
  dump(result.mask, prefix + "_mask.pgm");
  dump(sim.simulate(result.mask), prefix + "_wafer.pgm");
  return 0;
}

int cmd_eval(const Args& args) {
  const geom::Layout clip = load_layout(args);
  const litho::LithoSim sim = make_sim(clip, args.get_int("grid", 256), args);
  const geom::Grid target = geom::rasterize(clip, sim.pixel_nm(), /*threshold=*/true);
  const geom::Grid mask =
      engine::load_mask_pgm(args.require("mask"), sim.grid_size(), sim.pixel_nm());
  const auto report = metrics::evaluate_printability(sim, mask, clip, target);
  std::printf("%s\n", report.str().c_str());
  return 0;
}

// Set by the SIGINT handler; the trainer polls it between iterations and
// flushes a final checkpoint before returning.
std::atomic<bool> g_stop{false};

extern "C" void handle_sigint(int) { g_stop.store(true); }

bool file_exists(const std::string& path) {
  return std::ifstream(path, std::ios::binary).good();
}

int cmd_train(const Args& args) {
  const core::GanOpcConfig cfg =
      core::make_config(core::parse_scale(args.get("scale", "quick")));
  const litho::LithoSim sim(cfg.optics, litho::ResistConfig{}, cfg.litho_grid,
                            cfg.litho_pixel_nm());

  const std::string dataset_path = args.get("dataset", "ganopc_dataset.bin");
  core::Dataset dataset;
  if (file_exists(dataset_path)) {
    dataset = core::Dataset::load(dataset_path, cfg);
    std::printf("loaded %zu cached examples from %s\n", dataset.size(),
                dataset_path.c_str());
  } else {
    std::printf("generating dataset (synthesis + ILT ground truth)...\n");
    dataset = core::Dataset::generate(cfg, sim);
    dataset.save(dataset_path);
    std::printf("cached %zu examples to %s\n", dataset.size(), dataset_path.c_str());
  }

  Prng rng(cfg.seed);
  core::Generator generator(cfg.gan_grid, cfg.base_channels, rng);
  core::Discriminator discriminator(cfg.gan_grid, cfg.base_channels, rng, true,
                                    cfg.d_dropout);
  Prng train_rng(cfg.seed + 1);
  core::GanOpcTrainer trainer(cfg, generator, discriminator, dataset, sim, train_rng);

  core::TrainRunOptions run;
  run.checkpoint_path = args.get("checkpoint", "ganopc_train.ckpt");
  run.checkpoint_every = args.get_int("checkpoint-every", 10);
  run.stop = &g_stop;

  core::TrainPhase resumed_phase = core::TrainPhase::None;
  const std::string resume_path = args.get("resume", "");
  if (!resume_path.empty()) {
    const core::ResumeInfo info = trainer.resume(resume_path);
    resumed_phase = info.phase;
    std::printf("resuming from %s (%s, iteration %d/%d)\n", resume_path.c_str(),
                info.phase == core::TrainPhase::Pretrain ? "pretrain" : "train",
                info.next_iteration, info.total_iterations);
  }

  std::signal(SIGINT, handle_sigint);

  const int pretrain_iters = args.get_int("pretrain-iters", cfg.pretrain_iterations);
  const int train_iters = args.get_int("train-iters", cfg.gan_iterations);

  if (resumed_phase != core::TrainPhase::Adversarial) {
    std::printf("ILT-guided pre-training (%d iterations, Algorithm 2)...\n",
                pretrain_iters);
    const core::TrainStats pre = trainer.pretrain(pretrain_iters, run);
    if (!pre.litho_history.empty())
      std::printf("  litho error: %.1f -> %.1f (%.1fs, %d rollbacks)\n",
                  pre.litho_history.front(), pre.litho_history.back(), pre.seconds,
                  pre.divergence_rollbacks);
    if (pre.interrupted) {
      std::printf("interrupted; resume with --resume %s\n", run.checkpoint_path.c_str());
      return 130;
    }
  }

  std::printf("adversarial training (%d iterations, Algorithm 1)...\n", train_iters);
  const core::TrainStats adv = trainer.train(train_iters, run);
  if (!adv.l2_history.empty())
    std::printf("  L2 to reference masks: %.1f -> %.1f (%.1fs, %d rollbacks)\n",
                adv.l2_history.front(), adv.l2_history.back(), adv.seconds,
                adv.divergence_rollbacks);
  if (adv.interrupted) {
    std::printf("interrupted; resume with --resume %s\n", run.checkpoint_path.c_str());
    return 130;
  }

  const std::string out = args.get("out", "pgan_generator.bin");
  nn::save_parameters(generator.net(), out);
  std::printf("saved %s — load it with `ganopc flow --generator %s`\n", out.c_str(),
              out.c_str());
  return 0;
}

int cmd_flow(const Args& args) {
  const geom::Layout clip = load_layout(args);
  core::GanOpcConfig cfg = core::make_config(core::parse_scale(args.get("scale", "quick")));
  GANOPC_CHECK_MSG(clip.clip().width() == cfg.clip_nm,
                   "layout clip must be " << cfg.clip_nm << "nm for scale "
                                          << args.get("scale", "quick"));
  const litho::LithoSim sim(
      litho::make_litho_backend(backend_spec(args))
          ->build(cfg.optics, cfg.litho_grid, cfg.litho_pixel_nm()),
      litho::ResistConfig{});
  Prng rng(cfg.seed);
  core::Generator generator(cfg.gan_grid, cfg.base_channels, rng);
  nn::load_parameters(generator.net(), args.require("generator"));
  const core::GanOpcFlow flow(cfg, &generator, sim);
  const core::FlowResult result = flow.run(clip);
  std::printf("GAN-OPC flow: L2 %.0f nm^2, PVB %ld nm^2, %.2fs (%d ILT iters)\n",
              result.l2_nm2, static_cast<long>(result.pvb_nm2), result.total_seconds(),
              result.ilt_iterations);
  dump(result.mask, args.get("out", "flow") + "_mask.pgm");
  return 0;
}

// Comma-separated list -> items ("A,B" -> {"A","B"}); empty items dropped.
std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

// One Engine session configured from the shared command-line vocabulary —
// optimize/batch/serve all build their session here, which is what keeps a
// clip's result bit-identical across the three front-ends.
engine::EngineOptions engine_options_from_args(const Args& args) {
  engine::EngineOptions opts;
  opts.config = core::make_config(core::parse_scale(args.get("scale", "quick")));
  opts.config.litho_grid = args.get_int("grid", opts.config.litho_grid);
  opts.config.ilt.max_iterations =
      args.get_int("iters", opts.config.ilt.max_iterations);
  opts.backend = backend_spec(args);
  opts.generator_path = args.get("generator", "");
  engine::SubmitPolicy& policy = opts.policy;
  policy.clip_deadline_s = args.get_double("deadline-s", 0.0);
  policy.max_retries = args.get_int("max-retries", 1);
  policy.allow_fallback = args.get_int("fallback", 1) != 0;
  policy.l2_accept_factor = static_cast<float>(args.get_double("accept-factor", 1.0));
  policy.seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<int>(opts.config.seed)));
  policy.retry_backoff_base_s =
      args.get_double("retry-backoff-s", policy.retry_backoff_base_s);
  return opts;
}

// One-shot mask optimization through the Engine session — exactly the
// degradation chain a batch clip or serve request walks, so its mask bytes
// are the contract the engine test pins against the embedded API. Exit 0
// when the mask was accepted, 3 when the clip failed (typed code printed).
int cmd_optimize(const Args& args) {
  const engine::Engine eng(engine_options_from_args(args));
  engine::BatchClip clip;
  clip.path = args.require("layout");
  clip.id = args.get("id", "clip");
  engine::SubmitOptions opts;
  opts.want_mask = true;
  // Observability parity with serve (DESIGN.md §16): the one-shot path mints
  // the same trace root and request_start/request_end ledger events a daemon
  // request gets, so a clip traced via `optimize --trace-out` and one traced
  // through `serve --trace-out` produce the same span tree shape.
  opts.trace_id = obs::next_span_id();
  opts.parent_span = obs::next_span_id();
  char trace_hex[32];
  std::snprintf(trace_hex, sizeof trace_hex, "%llx",
                static_cast<unsigned long long>(opts.trace_id));
  const std::uint64_t admit_ns = obs::monotonic_ns();
  if (obs::ledger_enabled()) {
    obs::LedgerRecord rec("request_start");
    rec.field("id", clip.id).field("trace", trace_hex);
    obs::ledger_emit(rec);
  }
  const engine::MaskResult result = eng.submit(clip, opts);
  const std::uint64_t done_ns = obs::monotonic_ns();
  {
    static const obs::SpanSite& request_site = obs::span_site("cli.request");
    obs::record_span(request_site, admit_ns, done_ns, opts.trace_id,
                     opts.parent_span, 0);
  }
  const engine::BatchClipResult& row = result.row;
  if (obs::ledger_enabled()) {
    obs::LedgerRecord rec("request_end");
    rec.field("id", row.id)
        .field("code", status_code_name(row.code))
        .field("stage", engine::batch_stage_name(row.stage))
        .field("wall_s", static_cast<double>(done_ns - admit_ns) * 1e-9)
        .field("trace", trace_hex);
    obs::ledger_emit(rec);
  }
  if (!row.ok()) {
    std::printf("%s: FAILED %s: %s\n", row.id.c_str(), status_code_name(row.code),
                row.error.c_str());
    return 3;
  }
  std::printf("%s: ok stage=%s%s L2 %.0f nm^2, PVB %ld nm^2 (%d ILT iters, "
              "backend %s)\n",
              row.id.c_str(), engine::batch_stage_name(row.stage),
              row.retries > 0 ? " (retried)" : "", row.l2_nm2,
              static_cast<long>(row.pvb_nm2), row.ilt_iterations,
              eng.backend_name().c_str());
  const std::string out =
      args.get("mask-out", args.get("out", "optimize") + "_mask.pgm");
  dump(result.mask, out);
  return 0;
}

// Fault-tolerant batch mask optimization over many clip files. Exit code 0
// when every clip produced an accepted mask, 3 when the batch completed but
// some clips failed (their manifest rows carry the typed error code).
int cmd_batch(const Args& args) {
  std::vector<std::string> paths;
  const std::string list = args.get("list", "");
  if (!list.empty()) {
    std::ifstream in(list);
    GANOPC_CHECK_MSG(in.good(), "cannot open clip list " << list);
    std::string line;
    while (std::getline(in, line)) {
      while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
        line.pop_back();
      if (!line.empty() && line[0] != '#') paths.push_back(line);
    }
  } else {
    paths = split_csv(args.require("clips"));
  }
  GANOPC_CHECK_MSG(!paths.empty(), "no clips given (use --list or --clips)");

  const engine::Engine eng(engine_options_from_args(args));

  engine::BatchConfig bcfg;
  const std::string resume = args.get("resume", "");
  bcfg.journal_path = resume.empty() ? args.get("journal", "") : resume;
  bcfg.resume = !resume.empty();
  bcfg.deterministic_manifest = args.get_int("deterministic-manifest", 0) != 0;
  bcfg.workers = args.get_int("workers", 0);
  bcfg.quarantine_kills = args.get_int("quarantine-kills", bcfg.quarantine_kills);
  bcfg.task_deadline_s = args.get_double("task-deadline-s", 0.0);
  bcfg.worker_mem_mb = args.get_int("worker-mem-mb", 0);
  bcfg.worker_cpu_s = args.get_int("worker-cpu-s", 0);
  // Graceful drain: SIGTERM/SIGINT stops dispatching new clips, lets
  // in-flight ones finish (bounded by their deadlines), journals what
  // completed, and reports the untouched remainder as Cancelled rows.
  bcfg.stop = &g_stop;
  std::signal(SIGINT, handle_sigint);
  std::signal(SIGTERM, handle_sigint);

  const engine::BatchRunner runner(eng, bcfg);
  const engine::BatchSummary summary = runner.run_files(paths);

  for (const auto& c : summary.clips) {
    if (c.ok())
      std::printf("  %-16s ok      stage=%s%s L2 %.0f nm^2, PVB %ld nm^2%s\n",
                  c.id.c_str(), engine::batch_stage_name(c.stage),
                  c.retries > 0 ? " (retried)" : "", c.l2_nm2,
                  static_cast<long>(c.pvb_nm2), c.from_journal ? " [journal]" : "");
    else
      std::printf("  %-16s FAILED  %s: %s\n", c.id.c_str(),
                  status_code_name(c.code), c.error.c_str());
  }
  const std::string manifest = args.get("manifest", "batch_manifest.csv");
  engine::BatchRunner::write_manifest(manifest, summary);
  std::printf("batch: %d ok, %d failed, %d resumed from journal; wrote %s\n",
              summary.succeeded, summary.failed, summary.resumed, manifest.c_str());
  if (bcfg.workers > 0)
    std::printf("batch: supervised with %d worker(s): %d worker death(s), "
                "%d clip(s) quarantined\n",
                bcfg.workers, summary.worker_deaths, summary.quarantined);
  if (summary.drained) {
    // A drained run exits 0 when everything that actually ran succeeded;
    // the cancelled remainder is not a failure — it is resumable work.
    std::printf("batch: drained on SIGTERM/SIGINT; %d clip(s) cancelled%s\n",
                summary.cancelled,
                bcfg.journal_path.empty()
                    ? ""
                    : " (rerun with --resume to finish them)");
    return summary.failed == summary.cancelled ? 0 : 3;
  }
  return summary.failed == 0 ? 0 : 3;
}

// Fault-tolerant mask-optimization daemon (DESIGN.md §14): HTTP/1.1 over TCP
// or a Unix socket, bounded-queue admission control with deadline-aware
// shedding, per-request degradation (GAN+ILT -> ILT -> MB-OPC) across
// sandboxed workers, a circuit breaker after consecutive worker deaths, and
// graceful SIGTERM drain (exit 0).
int cmd_serve(const Args& args) {
  // The daemon always collects metrics: /metrics must reflect the whole
  // fleet (worker deltas merge into this registry) whether or not the
  // operator also asked for a --metrics-out exit snapshot.
  obs::set_metrics_enabled(true);
  const engine::Engine eng(engine_options_from_args(args));

  serve::ServeConfig scfg;
  scfg.host = args.get("host", "127.0.0.1");
  scfg.port = args.get_int("port", 8347);
  scfg.unix_socket = args.get("socket", "");
  scfg.port_file = args.get("port-file", "");
  scfg.max_conns = args.get_int("max-conns", scfg.max_conns);
  scfg.max_queue = args.get_int("max-queue", scfg.max_queue);
  scfg.default_deadline_s =
      args.get_double("default-deadline-s", scfg.default_deadline_s);
  scfg.max_deadline_s = args.get_double("max-deadline-s", scfg.max_deadline_s);
  scfg.read_timeout_s = args.get_double("read-timeout-s", scfg.read_timeout_s);
  scfg.write_timeout_s =
      args.get_double("write-timeout-s", scfg.write_timeout_s);
  scfg.max_body_bytes =
      static_cast<std::size_t>(args.get_int("max-body-mb", 64)) << 20;
  scfg.breaker_kills = args.get_int("breaker-kills", scfg.breaker_kills);
  scfg.breaker_cooldown_s =
      args.get_double("breaker-cooldown-s", scfg.breaker_cooldown_s);
  scfg.drain_grace_s = args.get_double("drain-grace-s", scfg.drain_grace_s);
  scfg.spool_dir = args.get("spool-dir", "");
  scfg.workers = args.get_int("workers", 1);
  scfg.quarantine_kills = args.get_int("quarantine-kills", scfg.quarantine_kills);
  scfg.heartbeat_timeout_s =
      args.get_double("heartbeat-timeout-s", scfg.heartbeat_timeout_s);
  scfg.worker_mem_mb = args.get_int("worker-mem-mb", 0);
  scfg.worker_cpu_s = args.get_int("worker-cpu-s", 0);
  scfg.seed = eng.policy().seed;
  scfg.stop = &g_stop;
  std::signal(SIGINT, handle_sigint);
  std::signal(SIGTERM, handle_sigint);

  serve::Server server(eng, scfg);
  return server.run();
}

int cmd_txt2gds(const Args& args) {
  const geom::Layout clip = geom::Layout::load(args.require("layout"));
  const std::string out = args.get("out", "layout.gds");
  gds::write_gds(out, gds::layout_to_gds(clip, args.get("cell", "CLIP"),
                                         static_cast<std::int16_t>(args.get_int("layer", 1))));
  std::printf("wrote %s (%zu boundaries)\n", out.c_str(), clip.size());
  return 0;
}

int cmd_gds2txt(const Args& args) {
  const std::int32_t clip_nm = args.get_int("clipsize", 2048);
  const geom::Layout clip = gds::gds_to_layout(
      gds::read_gds(args.require("gds")), geom::Rect{0, 0, clip_nm, clip_nm},
      args.get("cell", ""), static_cast<std::int16_t>(args.get_int("layer", 1)));
  const std::string out = args.get("out", "layout.txt");
  clip.save(out);
  std::printf("wrote %s (%zu rects, %ld nm^2)\n", out.c_str(), clip.size(),
              static_cast<long>(clip.union_area()));
  return 0;
}

// Regression verdict over baseline/current BENCH_*.json and/or ledger pairs.
// Exit 0 = PASS, 4 = FAIL (so CI can distinguish a regression from a crash).
int cmd_report(const Args& args) {
  obs::RegressThresholds thresholds;
  thresholds.max_runtime_ratio =
      args.get_double("max-runtime-ratio", thresholds.max_runtime_ratio);
  thresholds.max_quality_ratio =
      args.get_double("max-quality-ratio", thresholds.max_quality_ratio);

  const std::vector<std::string> bench_base = split_csv(args.get("bench-base", ""));
  const std::vector<std::string> bench_cur = split_csv(args.get("bench-cur", ""));
  GANOPC_CHECK_MSG(bench_base.size() == bench_cur.size(),
                   "--bench-base and --bench-cur need the same number of files");
  const std::string ledger_base = args.get("ledger-base", "");
  const std::string ledger_cur = args.get("ledger-cur", "");
  GANOPC_CHECK_MSG(ledger_base.empty() == ledger_cur.empty(),
                   "--ledger-base and --ledger-cur must be given together");
  GANOPC_CHECK_MSG(!bench_base.empty() || !ledger_base.empty(),
                   "nothing to compare (use --bench-base/--bench-cur and/or "
                   "--ledger-base/--ledger-cur)");

  obs::RegressReport report;
  for (std::size_t i = 0; i < bench_base.size(); ++i)
    obs::compare_bench(obs::load_bench_file(bench_base[i]),
                       obs::load_bench_file(bench_cur[i]), thresholds, report);
  if (!ledger_base.empty())
    obs::compare_ledgers(obs::read_ledger(ledger_base),
                         obs::read_ledger(ledger_cur), thresholds, report);
  std::printf("%s", report.summary().c_str());
  return report.pass ? 0 : 4;
}

void usage() {
  std::fprintf(stderr,
               "usage: ganopc <synth|sraf|ilt|mbopc|eval|train|flow|optimize|batch|serve|report> [--flag value ...]\n"
               "global flags: --metrics-out FILE (Prometheus text, or JSON when\n"
               "FILE ends in .json), --trace-out FILE (chrome://tracing JSON)\n"
               "and --ledger-out FILE (JSONL run ledger + flight recorder);\n"
               "litho commands accept --litho-backend abbe|tcc|tcc:K\n"
               "see tools/cli.cpp header for per-command flags\n");
}

// Observability sink (DESIGN.md §10): --metrics-out / --trace-out work on
// every command. Flags are enabled before dispatch and the files are written
// on the way out — also after a command error, so a failed run still leaves
// its counters and spans behind for diagnosis.
class ObsSink {
 public:
  explicit ObsSink(const Args& args)
      : metrics_path_(args.get("metrics-out", "")),
        trace_path_(args.get("trace-out", "")) {
    if (!metrics_path_.empty()) obs::set_metrics_enabled(true);
    if (!trace_path_.empty()) obs::set_trace_enabled(true);
  }

  ~ObsSink() {
    if (!metrics_path_.empty()) {
      const obs::Snapshot snap = obs::snapshot();
      write_file(metrics_path_, ends_with(metrics_path_, ".json")
                                    ? obs::to_json(snap)
                                    : obs::to_prometheus(snap));
    }
    if (!trace_path_.empty())
      write_file(trace_path_, obs::trace_to_chrome_json(obs::trace_events()));
  }

 private:
  static void write_file(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
    if (out.good())
      std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
    else
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
  }

  std::string metrics_path_;
  std::string trace_path_;
};

// Run ledger sink (DESIGN.md §11): --ledger-out opens the JSONL ledger in
// append mode before dispatch and writes the run_start header — build
// version, full command line and its FNV-1a config fingerprint — so every
// run in the file is self-identifying. finish()/fail() append the run_end
// record (exit code + embedded metrics snapshot); a fatal error additionally
// dumps the flight-recorder ring to FILE.crash.json before the process dies.
class LedgerSink {
 public:
  LedgerSink(const std::string& cmd, const Args& args, int argc, char** argv)
      : path_(args.get("ledger-out", "")) {
    if (path_.empty()) return;
    obs::ledger_open(path_);
    // The run_end record embeds a metrics snapshot; without the registry
    // collecting it would be all zeros, so the ledger implies --metrics.
    obs::set_metrics_enabled(true);
    std::string cmdline;
    for (int i = 1; i < argc; ++i) {
      if (i > 1) cmdline += ' ';
      cmdline += argv[i];
    }
    obs::LedgerRecord rec("run_start");
    rec.field("cmd", cmd)
        .field("cmdline", cmdline)
        .field("version", build_version())
        .field("config_fingerprint", obs::fingerprint64(cmdline));
    obs::ledger_emit(rec);
  }

  ~LedgerSink() { obs::ledger_close(); }

  void finish(int exit_code) { run_end(exit_code, ""); }

  void fail(const std::exception& e) {
    if (path_.empty()) return;
    obs::flight_dump(std::string("fatal.") +
                     status_code_name(status_from_exception(e).code()));
    run_end(1, e.what());
  }

 private:
  void run_end(int exit_code, const std::string& error) {
    if (path_.empty()) return;
    obs::LedgerRecord rec("run_end");
    rec.field("exit_code", exit_code).field("ok", exit_code == 0);
    if (!error.empty()) rec.field("error", error);
    rec.raw("metrics", obs::to_json(obs::snapshot()));
    obs::ledger_emit(rec);
    std::printf("wrote ledger %s\n", path_.c_str());
  }

  std::string path_;
};

int dispatch(const std::string& cmd, const Args& args) {
  if (cmd == "synth") return cmd_synth(args);
  if (cmd == "sraf") return cmd_sraf(args);
  if (cmd == "ilt") return cmd_ilt(args);
  if (cmd == "mbopc") return cmd_mbopc(args);
  if (cmd == "eval") return cmd_eval(args);
  if (cmd == "train") return cmd_train(args);
  if (cmd == "flow") return cmd_flow(args);
  if (cmd == "optimize") return cmd_optimize(args);
  if (cmd == "batch") return cmd_batch(args);
  if (cmd == "serve") return cmd_serve(args);
  if (cmd == "txt2gds") return cmd_txt2gds(args);
  if (cmd == "gds2txt") return cmd_gds2txt(args);
  if (cmd == "report") return cmd_report(args);
  usage();
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    const Args args(argc, argv, 2);
    const ObsSink obs_sink(args);
    LedgerSink ledger(cmd, args, argc, argv);
    try {
      const int rc = dispatch(cmd, args);
      ledger.finish(rc);
      return rc;
    } catch (const std::exception& e) {
      ledger.fail(e);
      throw;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
