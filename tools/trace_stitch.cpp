// trace_stitch — assemble per-request span trees out of a fleet trace
// (DESIGN.md §16).
//
//   trace_stitch --in TRACE.json --out STITCHED.json
//                [--check] [--expect-remote N]
//
// `ganopc serve --trace-out` already writes one Chrome trace holding both
// supervisor spans and the worker spans shipped back over the proc wire
// (each event's pid is the process that recorded it; trace/span/parent ids
// ride in `args`). Chrome's viewer, however, groups by pid — worker spans
// land in a different process lane than the request they belong to. This
// tool re-cuts the file along request boundaries: every trace id with a
// root span (parent == 0, e.g. serve.request / cli.request) becomes its own
// process lane named after the root, all spans reachable from the root are
// remapped into that lane on one thread row (Chrome nests same-tid slices
// by time containment, and supervisor/worker clocks are the same
// CLOCK_MONOTONIC, so worker spans visually nest under the request span),
// and the origin pid/tid are preserved in `args`. Events with no trace
// context pass through on an "untraced" lane.
//
// --check turns the tool into a CI gate: exit 4 when any span's parent is
// missing from its trace (orphan), when a trace has no root, or when fewer
// than --expect-remote spans recorded by a *different* process than the
// root are reachable from request roots — i.e. it proves worker spans
// really stitched under supervisor requests. Exit codes: 0 ok, 4 check
// failed, 2 usage, 1 I/O or parse error (matching obs_diff).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace {

using namespace ganopc;

struct Span {
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
};

int usage() {
  std::fprintf(stderr,
               "usage: trace_stitch --in TRACE.json --out STITCHED.json\n"
               "                    [--check] [--expect-remote N]\n"
               "exit: 0 ok, 4 check failed, 2 usage, 1 error\n");
  return 2;
}

std::uint64_t hex_or_zero(const json::Value& obj, std::string_view key) {
  const json::Value* v = obj.find(key);
  if (v == nullptr || !v->is_string()) return 0;
  return std::strtoull(v->as_string().c_str(), nullptr, 16);
}

void append_event(std::string& out, bool& first, const Span& s,
                  std::uint32_t lane_pid, std::uint32_t lane_tid) {
  char buf[256];
  out += first ? "\n  " : ",\n  ";
  first = false;
  out += "{\"name\":\"";
  json::escape_into(out, s.name);
  int n = std::snprintf(buf, sizeof buf,
                        "\",\"cat\":\"ganopc\",\"ph\":\"X\",\"ts\":%.3f,"
                        "\"dur\":%.3f,\"pid\":%u,\"tid\":%u",
                        s.ts_us, s.dur_us, lane_pid, lane_tid);
  out.append(buf, static_cast<std::size_t>(n));
  if (s.trace != 0) {
    n = std::snprintf(buf, sizeof buf,
                      ",\"args\":{\"trace\":\"%llx\",\"span\":\"%llx\","
                      "\"parent\":\"%llx\",\"src_pid\":%u,\"src_tid\":%u}",
                      static_cast<unsigned long long>(s.trace),
                      static_cast<unsigned long long>(s.span),
                      static_cast<unsigned long long>(s.parent), s.pid, s.tid);
    out.append(buf, static_cast<std::size_t>(n));
  }
  out += '}';
}

void append_metadata(std::string& out, bool& first, const char* what,
                     std::uint32_t lane_pid, const std::string& label) {
  char buf[96];
  out += first ? "\n  " : ",\n  ";
  first = false;
  int n = std::snprintf(
      buf, sizeof buf, "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%u,", what,
      lane_pid);
  out.append(buf, static_cast<std::size_t>(n));
  out += "\"args\":{\"name\":\"";
  json::escape_into(out, label);
  out += "\"}}";
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_path, out_path;
  bool check = false;
  long expect_remote = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--in" && i + 1 < argc) {
      in_path = argv[++i];
    } else if (flag == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (flag == "--check") {
      check = true;
    } else if (flag == "--expect-remote" && i + 1 < argc) {
      expect_remote = std::atol(argv[++i]);
    } else {
      return usage();
    }
  }
  if (in_path.empty() || out_path.empty()) return usage();

  try {
    std::ifstream in(in_path, std::ios::binary);
    if (!in.good()) {
      std::fprintf(stderr, "trace_stitch: cannot read %s\n", in_path.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const json::Value doc = json::parse(ss.str());
    const json::Value* events = doc.find("traceEvents");
    if (events == nullptr || !events->is_array()) {
      std::fprintf(stderr, "trace_stitch: %s has no traceEvents array\n",
                   in_path.c_str());
      return 1;
    }

    std::vector<Span> spans;
    std::vector<Span> untraced;
    for (const json::Value& e : events->items()) {
      if (e.string_or("ph", "") != "X") continue;  // metadata etc.
      Span s;
      s.name = e.string_or("name", "?");
      s.ts_us = e.number_or("ts", 0.0);
      s.dur_us = e.number_or("dur", 0.0);
      s.pid = static_cast<std::uint32_t>(e.number_or("pid", 0.0));
      s.tid = static_cast<std::uint32_t>(e.number_or("tid", 0.0));
      if (const json::Value* args = e.find("args")) {
        s.trace = hex_or_zero(*args, "trace");
        s.span = hex_or_zero(*args, "span");
        s.parent = hex_or_zero(*args, "parent");
      }
      (s.trace != 0 ? spans : untraced).push_back(std::move(s));
    }

    // Group by trace id and rebuild each tree: index spans by id, then walk
    // parent links. A span whose parent id is absent from its trace is an
    // orphan (a dropped frame or a bug in context propagation).
    std::map<std::uint64_t, std::vector<Span>> traces;
    for (Span& s : spans) traces[s.trace].push_back(std::move(s));

    std::size_t orphans = 0, rootless = 0;
    long remote_reachable = 0;
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    std::uint32_t lane = 1;
    for (auto& [trace_id, tree] : traces) {
      std::map<std::uint64_t, std::size_t> by_id;
      for (std::size_t i = 0; i < tree.size(); ++i) by_id[tree[i].span] = i;
      const Span* root = nullptr;
      for (const Span& s : tree) {
        if (s.parent == 0) {
          root = &s;
        } else if (by_id.find(s.parent) == by_id.end()) {
          ++orphans;
          std::fprintf(stderr,
                       "trace %llx: orphan span %llx (%s): parent %llx "
                       "missing\n",
                       static_cast<unsigned long long>(trace_id),
                       static_cast<unsigned long long>(s.span), s.name.c_str(),
                       static_cast<unsigned long long>(s.parent));
        }
      }
      if (root == nullptr) {
        ++rootless;
        std::fprintf(stderr, "trace %llx: no root span (%zu spans)\n",
                     static_cast<unsigned long long>(trace_id), tree.size());
      } else {
        // Count spans recorded by another process that chain up to the
        // root — the stitched-fleet property the CI gate asserts.
        for (const Span& s : tree) {
          if (s.pid == root->pid) continue;
          std::uint64_t cursor = s.parent;
          for (std::size_t hops = 0; cursor != 0 && hops <= tree.size();
               ++hops) {
            auto it = by_id.find(cursor);
            if (it == by_id.end()) break;
            cursor = tree[it->second].parent;
          }
          if (cursor == 0) ++remote_reachable;
        }
      }

      char label[64];
      std::snprintf(label, sizeof label, "%s %llx",
                    root != nullptr ? root->name.c_str() : "trace",
                    static_cast<unsigned long long>(trace_id));
      append_metadata(out, first, "process_name", lane, label);
      // One thread row per lane: spans of a request are strictly nested in
      // time (supervisor admit..deliver wraps the worker's task), so Chrome
      // renders the tree by containment alone.
      std::sort(tree.begin(), tree.end(), [](const Span& a, const Span& b) {
        return a.ts_us != b.ts_us ? a.ts_us < b.ts_us : a.dur_us > b.dur_us;
      });
      for (const Span& s : tree) append_event(out, first, s, lane, 1);
      ++lane;
    }
    if (!untraced.empty()) {
      const std::uint32_t lane_pid = lane;
      append_metadata(out, first, "process_name", lane_pid, "untraced");
      for (const Span& s : untraced)
        append_event(out, first, s, lane_pid, s.tid);
    }
    out += "\n]}\n";

    std::ofstream of(out_path, std::ios::binary | std::ios::trunc);
    of << out;
    if (!of.good()) {
      std::fprintf(stderr, "trace_stitch: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf(
        "trace_stitch: %zu trace(s), %zu traced span(s), %zu untraced, "
        "%ld remote span(s) under request roots, %zu orphan(s), %zu "
        "rootless -> %s\n",
        traces.size(), spans.size(), untraced.size(), remote_reachable,
        orphans, rootless, out_path.c_str());

    if (check) {
      if (orphans != 0 || rootless != 0 || remote_reachable < expect_remote) {
        std::fprintf(stderr,
                     "trace_stitch: CHECK FAILED (%zu orphans, %zu rootless, "
                     "%ld remote < %ld expected)\n",
                     orphans, rootless, remote_reachable, expect_remote);
        return 4;
      }
      std::printf("trace_stitch: CHECK PASSED\n");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_stitch: error: %s\n", e.what());
    return 1;
  }
}
