// Figure 8 + Figure 9 reproduction: per-case visualization panels.
//
// For each of the 10 benchmark cases, writes PGM images matching the rows of
// Figure 8: (a) ILT mask, (b) PGAN-OPC mask, (c) ILT wafer, (d) PGAN-OPC
// wafer, (e) target — and prints the Figure 9-style defect comparison
// (line-end pullback / bridging shows up as EPE + break/bridge counts).
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "common/image_io.hpp"
#include "core/flow.hpp"
#include "geometry/raster.hpp"
#include "layout/benchmark_suite.hpp"
#include "metrics/defects.hpp"
#include "metrics/epe.hpp"

int main() {
  using namespace ganopc;
  const core::GanOpcConfig cfg = bench::bench_config();
  std::printf("== Figure 8/9: mask and wafer visualization panels ==\n\n");

  const litho::LithoSim sim(cfg.optics, litho::ResistConfig{}, cfg.litho_grid,
                            cfg.litho_pixel_nm());
  const core::Dataset dataset = bench::get_dataset(cfg, sim);
  core::Generator pgan = bench::get_generator(cfg, sim, dataset, /*pretrained=*/true);

  const auto suite = layout::make_benchmark_suite(cfg.clip_nm);
  const core::GanOpcFlow ilt_flow(cfg, nullptr, sim);
  const core::GanOpcFlow pgan_flow(cfg, &pgan, sim);

  const auto dump = [](const geom::Grid& g, const std::string& name) {
    write_pgm(name, to_gray(g.data.data(), g.cols, g.rows));
  };

  std::printf("%-4s | %-22s | %-22s\n", "ID", "ILT [7] EPEV/neck/brk/brdg",
              "PGAN-OPC EPEV/neck/brk/brdg");
  for (const auto& bc : suite) {
    const core::FlowResult r_ilt = ilt_flow.run_ilt_only(bc.layout);
    const core::FlowResult r_pgan = pgan_flow.run(bc.layout);
    const std::string tag = "figure8_case" + std::to_string(bc.id);
    dump(r_ilt.mask, tag + "_a_ilt_mask.pgm");
    dump(r_pgan.mask, tag + "_b_pgan_mask.pgm");
    dump(r_ilt.wafer, tag + "_c_ilt_wafer.pgm");
    dump(r_pgan.wafer, tag + "_d_pgan_wafer.pgm");
    dump(r_pgan.target, tag + "_e_target.pgm");

    // Figure 9: defect details of both flows.
    const geom::Grid& tg = r_pgan.target;
    const auto count = [&](const core::FlowResult& r) {
      const auto epe = metrics::measure_epe(bc.layout, r.wafer);
      const auto necks = metrics::detect_necks(bc.layout, r.wafer);
      const auto breaks = metrics::detect_breaks(tg, r.wafer);
      const auto bridges = metrics::detect_bridges(tg, r.wafer);
      char buf[64];
      std::snprintf(buf, sizeof buf, "%3d / %2zu / %2zu / %2zu", epe.violations,
                    necks.size(), breaks.size(), bridges.size());
      return std::string(buf);
    };
    std::printf("%-4d | %-26s | %-26s\n", bc.id, count(r_ilt).c_str(),
                count(r_pgan).c_str());
  }
  std::printf("\nwrote figure8_case<N>_{a..e}_*.pgm (5 panels x 10 cases)\n");
  return 0;
}
