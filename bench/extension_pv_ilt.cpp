// Extension: process-variation-aware ILT (the paper's deferred follow-up).
//
// The paper optimizes the nominal condition only and reports "comparable"
// PV bands as a consequence ("no PVB factors are considered"). Summing the
// Eq. 14 gradient over dose corners {0.98, 1.0, 1.02} turns the same engine
// into the PW-aware solver of [4][5]; this bench quantifies the PVB gain
// and the L2 cost on the benchmark suite.
#include <cstdio>

#include "common/csv.hpp"
#include "geometry/raster.hpp"
#include "ilt/ilt.hpp"
#include "layout/benchmark_suite.hpp"
#include "litho/lithosim.hpp"

int main() {
  using namespace ganopc;
  std::printf("== Extension: PV-aware ILT (dose-corner objective) ==\n\n");
  litho::OpticsConfig optics;
  const litho::LithoSim sim(optics, litho::ResistConfig{}, 128, 16);

  ilt::IltConfig nominal;
  nominal.max_iterations = 150;
  ilt::IltConfig pv_aware = nominal;
  pv_aware.dose_corners = {0.98f, 1.0f, 1.02f};
  const ilt::IltEngine nominal_engine(sim, nominal);
  const ilt::IltEngine pv_engine(sim, pv_aware);

  const auto suite = layout::make_benchmark_suite(2048);
  CsvWriter csv("extension_pv_ilt.csv",
                {"case", "nominal_l2", "nominal_pvb", "pv_l2", "pv_pvb"});
  std::printf("%-4s | %10s %10s | %10s %10s\n", "ID", "nom L2", "nom PVB", "pv L2",
              "pv PVB");
  double sum_nom_pvb = 0, sum_pv_pvb = 0, sum_nom_l2 = 0, sum_pv_l2 = 0;
  for (const auto& bc : suite) {
    const geom::Grid target = geom::rasterize(bc.layout, 16, /*threshold=*/true);
    const ilt::IltResult r_nom = nominal_engine.optimize(target);
    const ilt::IltResult r_pv = pv_engine.optimize(target);
    const auto pvb_nom = sim.pv_band(r_nom.mask).area_nm2;
    const auto pvb_pv = sim.pv_band(r_pv.mask).area_nm2;
    const double l2_nom = r_nom.l2_px * 256.0, l2_pv = r_pv.l2_px * 256.0;
    std::printf("%-4d | %10.0f %10ld | %10.0f %10ld\n", bc.id, l2_nom,
                static_cast<long>(pvb_nom), l2_pv, static_cast<long>(pvb_pv));
    csv.row_numeric({static_cast<double>(bc.id), l2_nom,
                     static_cast<double>(pvb_nom), l2_pv,
                     static_cast<double>(pvb_pv)});
    sum_nom_pvb += static_cast<double>(pvb_nom);
    sum_pv_pvb += static_cast<double>(pvb_pv);
    sum_nom_l2 += l2_nom;
    sum_pv_l2 += l2_pv;
  }
  std::printf("%-4s | %10.0f %10.0f | %10.0f %10.0f\n", "avg", sum_nom_l2 / 10,
              sum_nom_pvb / 10, sum_pv_l2 / 10, sum_pv_pvb / 10);
  std::printf("\nPVB ratio (pv-aware / nominal): %.3f at L2 ratio %.3f\n",
              sum_pv_pvb / sum_nom_pvb,
              sum_nom_l2 > 0 ? sum_pv_l2 / sum_nom_l2 : 1.0);
  std::printf("wrote extension_pv_ilt.csv\n");
  return 0;
}
