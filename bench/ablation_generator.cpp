// Ablation: generator backbone — the paper's auto-encoder vs a UNet with
// skip connections (the architecture GAN-OPC's follow-up work adopts).
//
// Both train with identical budget, data and seeds; the bench reports the
// Eq. (9) L2-to-reference trajectory. Skips typically help the generator
// keep the fine geometry of the target, lowering the regression loss.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_util.hpp"
#include "common/csv.hpp"

namespace {

float tail(const std::vector<float>& v) {
  const std::size_t take = std::max<std::size_t>(1, v.size() / 10);
  return std::accumulate(v.end() - static_cast<std::ptrdiff_t>(take), v.end(), 0.0f) /
         static_cast<float>(take);
}

}  // namespace

int main() {
  using namespace ganopc;
  core::GanOpcConfig cfg = bench::bench_config();
  cfg.gan_iterations = std::min(cfg.gan_iterations, 300);
  std::printf("== Ablation: auto-encoder vs UNet generator ==\n");
  std::printf("%d adversarial iterations, gan %dx%d, %lld base channels\n\n",
              cfg.gan_iterations, cfg.gan_grid, cfg.gan_grid,
              static_cast<long long>(cfg.base_channels));

  const litho::LithoSim sim(cfg.optics, litho::ResistConfig{}, cfg.litho_grid,
                            cfg.litho_pixel_nm());
  const core::Dataset dataset = bench::get_dataset(cfg, sim);

  std::vector<float> curves[2];
  double seconds[2] = {0, 0};
  const core::GeneratorArch archs[2] = {core::GeneratorArch::AutoEncoder,
                                        core::GeneratorArch::UNet};
  const char* names[2] = {"auto-encoder", "unet"};
  for (int a = 0; a < 2; ++a) {
    Prng rng(cfg.seed + 31);
    core::Generator g(cfg.gan_grid, cfg.base_channels, rng, archs[a]);
    core::Discriminator d(cfg.gan_grid, cfg.base_channels, rng);
    Prng train_rng(cfg.seed + 32);
    core::GanOpcTrainer trainer(cfg, g, d, dataset, sim, train_rng);
    const core::TrainStats stats = trainer.train(cfg.gan_iterations);
    curves[a] = stats.l2_history;
    seconds[a] = stats.seconds;
    std::printf("%-13s: L2 %.1f -> tail %.1f (%.1fs)\n", names[a],
                stats.l2_history.front(), tail(stats.l2_history), stats.seconds);
  }

  CsvWriter csv("ablation_generator.csv", {"iteration", "autoencoder_l2", "unet_l2"});
  for (std::size_t i = 0; i < std::min(curves[0].size(), curves[1].size()); ++i)
    csv.row_numeric({static_cast<double>(i), curves[0][i], curves[1][i]});

  std::printf("\n%s (AE %.1f vs UNet %.1f); UNet costs %.1fx the training time\n",
              tail(curves[1]) < tail(curves[0])
                  ? "skip connections reach a lower regression loss"
                  : "the plain auto-encoder held its own here",
              tail(curves[0]), tail(curves[1]),
              seconds[0] > 0 ? seconds[1] / seconds[0] : 0.0);
  std::printf("wrote ablation_generator.csv\n");
  return 0;
}
