// Ablation: ILT mask-smoothness regularization (manufacturability).
//
// Pixel-based ILT can scatter sub-resolution assist-like fragments over the
// mask, which are expensive to write. A quadratic smoothness penalty trades
// a little squared-L2 for dramatically simpler masks. Sweeps lambda and
// reports L2, mask fragment count (connected components) and mask perimeter
// (total 0/1 transitions — a proxy for mask write cost).
#include <cstdio>

#include "common/csv.hpp"
#include "geometry/bitmap_ops.hpp"
#include "geometry/raster.hpp"
#include "ilt/ilt.hpp"
#include "layout/synthesizer.hpp"
#include "litho/lithosim.hpp"

namespace {

using namespace ganopc;

std::int64_t mask_perimeter_px(const geom::Grid& mask) {
  std::int64_t edges = 0;
  for (std::int32_t r = 0; r < mask.rows; ++r)
    for (std::int32_t c = 0; c < mask.cols; ++c) {
      const bool on = mask.at(r, c) >= 0.5f;
      if (c + 1 < mask.cols && on != (mask.at(r, c + 1) >= 0.5f)) ++edges;
      if (r + 1 < mask.rows && on != (mask.at(r + 1, c) >= 0.5f)) ++edges;
    }
  return edges;
}

}  // namespace

int main() {
  std::printf("== Ablation: ILT smoothness regularization ==\n\n");
  litho::OpticsConfig optics;
  const litho::LithoSim sim(optics, litho::ResistConfig{}, 128, 16);

  layout::SynthesisConfig synth;
  Prng rng(4711);
  const geom::Layout clip = layout::synthesize_clip(synth, rng);
  const geom::Grid target = geom::rasterize(clip, 16, /*threshold=*/true);

  CsvWriter csv("ablation_ilt_smoothness.csv",
                {"lambda", "l2_px", "fragments", "perimeter_px", "iterations"});
  std::printf("%-8s %10s %10s %12s %7s\n", "lambda", "L2 (px)", "fragments",
              "perimeter px", "iters");
  for (const float lambda : {0.0f, 0.05f, 0.2f, 0.5f, 1.0f}) {
    ilt::IltConfig cfg;
    cfg.max_iterations = 150;
    cfg.smoothness_lambda = lambda;
    const ilt::IltEngine engine(sim, cfg);
    const ilt::IltResult result = engine.optimize(target);
    std::int32_t fragments = 0;
    geom::connected_components(result.mask, fragments);
    const std::int64_t perimeter = mask_perimeter_px(result.mask);
    std::printf("%-8.2f %10.0f %10d %12ld %7d\n", lambda, result.l2_px, fragments,
                static_cast<long>(perimeter), result.iterations);
    csv.row_numeric({lambda, result.l2_px, static_cast<double>(fragments),
                     static_cast<double>(perimeter),
                     static_cast<double>(result.iterations)});
  }
  std::printf("\nhigher lambda -> simpler masks at a small L2 cost "
              "(wrote ablation_ilt_smoothness.csv)\n");
  return 0;
}
