// Ablation: sub-resolution assist features on isolated wires.
//
// SRAFs [9] are the classic companion to OPC for process-window robustness:
// scatter bars steepen the image slope of isolated features. This bench
// measures the +/-2% dose PV band and the nominal L2 with and without bars
// on a sweep of isolated-wire clips, and verifies the bars do not print.
#include <cstdio>

#include "common/csv.hpp"
#include "geometry/bitmap_ops.hpp"
#include "geometry/raster.hpp"
#include "litho/lithosim.hpp"
#include "sraf/sraf.hpp"

int main() {
  using namespace ganopc;
  std::printf("== Ablation: SRAF insertion on isolated wires ==\n\n");
  litho::OpticsConfig optics;
  const litho::LithoSim sim(optics, litho::ResistConfig{}, 256, 8);

  CsvWriter csv("ablation_sraf.csv",
                {"wire_width_nm", "bars", "pvb_plain", "pvb_sraf", "l2_plain",
                 "l2_sraf", "sraf_prints"});
  std::printf("%-8s %5s | %10s %10s | %9s %9s | %6s\n", "width", "bars", "PVB plain",
              "PVB +SRAF", "L2 plain", "L2 +SRAF", "prints");
  for (const std::int32_t width : {80, 100, 120, 160}) {
    geom::Layout clip(geom::Rect{0, 0, 2048, 2048});
    clip.add({1024 - width / 2, 424, 1024 + width / 2, 1624});
    const auto decorated = sraf::insert_srafs(clip);

    const geom::Grid target = geom::rasterize(clip, 8, /*threshold=*/true);
    const geom::Grid plain_mask = target;
    const geom::Grid sraf_mask =
        geom::rasterize(decorated.decorated, 8, /*threshold=*/true);

    const auto pvb_plain = sim.pv_band(plain_mask).area_nm2;
    const auto pvb_sraf = sim.pv_band(sraf_mask).area_nm2;
    const double l2_plain = sim.l2_error(plain_mask, target) * 64.0;
    const double l2_sraf = sim.l2_error(sraf_mask, target) * 64.0;

    // Sub-resolution check: printing the bars alone must leave no resist.
    geom::Layout bars_only(clip.clip());
    for (const auto& bar : decorated.bars) bars_only.add(bar);
    const geom::Grid bars_print = sim.simulate(
        geom::rasterize(bars_only, 8, /*threshold=*/true));
    const std::int64_t printed_px = geom::on_count(bars_print);

    std::printf("%-8d %5zu | %10ld %10ld | %9.0f %9.0f | %6s\n", width,
                decorated.bars.size(), static_cast<long>(pvb_plain),
                static_cast<long>(pvb_sraf), l2_plain, l2_sraf,
                printed_px == 0 ? "no" : "YES!");
    csv.row_numeric({static_cast<double>(width),
                     static_cast<double>(decorated.bars.size()),
                     static_cast<double>(pvb_plain), static_cast<double>(pvb_sraf),
                     l2_plain, l2_sraf, static_cast<double>(printed_px)});
  }
  std::printf("\n(PVB deltas depend on the optical model; scatter bars must never\n"
              " print on their own — wrote ablation_sraf.csv)\n");
  return 0;
}
