// bench_regress: perf-regression baseline emitter (DESIGN.md §10).
//
// Runs a fixed, deterministic litho workload and a short ILT run with the
// obs layer enabled, then dumps the per-stage timing distributions straight
// from the obs histograms:
//   BENCH_litho.json — simulate / simulate_batch / gradient / aerial /
//                      pv_band stage timings + FFT plan-cache hit rate
//   BENCH_ilt.json   — ilt.optimize timing, iteration count, terminations
// Each file also carries "[tcc]"-labeled rows: the same workload through the
// truncated-TCC backend (`tcc:8`), so the serving-path speedup the backend
// exists for is itself regression-gated — TCC litho.simulate p50 must stay
// ~(1 + N_abbe) / (1 + k) times under the Abbe row (DESIGN.md §15).
// Each stage entry carries {count, sum_s, p50_s, p95_s}, so two snapshots
// from different commits diff into a regression report. CI's bench-smoke job
// uploads both files as artifacts.
//
// Usage: bench_regress [--out DIR] [--grid N] [--reps N]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "geometry/raster.hpp"
#include "ilt/ilt.hpp"
#include "litho/backend.hpp"
#include "litho/lithosim.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ganopc {
namespace {

geom::Grid wire_clip(std::int32_t grid, std::int32_t pixel, std::int32_t shift) {
  geom::Layout l(geom::Rect{0, 0, grid * pixel, grid * pixel});
  const std::int32_t mid = grid * pixel / 2;
  l.add({mid - 60 + shift, mid - 500, mid + 60 + shift, mid + 500});
  l.add({mid - 400, mid - 60 - shift, mid + 400, mid + 60 - shift});
  return geom::rasterize(l, pixel, /*threshold=*/true);
}

/// One row of the "stages" object: histogram `stage` out of `snap`, printed
/// under `label` (labels let the same obs span appear once per backend, e.g.
/// "litho.simulate" and "litho.simulate[tcc]").
struct StageRow {
  const obs::Snapshot* snap;
  const char* stage;
  const char* label;
};

/// "label": {"count": .., "sum_s": .., "p50_s": .., "p95_s": ..}
void append_stage(std::string& out, const StageRow& row, bool& first) {
  const obs::HistogramSnapshot* h =
      row.snap->find_histogram(std::string(row.stage) + ".seconds");
  if (h == nullptr || h->count == 0) return;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%s\"%s\":{\"count\":%llu,\"sum_s\":%.6g,\"p50_s\":%.6g,"
                "\"p95_s\":%.6g}",
                first ? "" : ",", row.label,
                static_cast<unsigned long long>(h->count), h->sum,
                h->quantile(0.5), h->quantile(0.95));
  out += buf;
  first = false;
}

void append_counter(std::string& out, const obs::Snapshot& snap,
                    const char* name, bool& first) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s\"%s\":%llu", first ? "" : ",", name,
                static_cast<unsigned long long>(snap.counter_value(name)));
  out += buf;
  first = false;
}

void write_report(const std::string& path, const char* bench,
                  std::int32_t grid, int reps, const obs::Snapshot& snap,
                  const std::vector<StageRow>& stages,
                  const std::vector<const char*>& counters,
                  const std::string& quality_json = "") {
  std::string out = "{\"schema\":1,\"bench\":\"";
  out += bench;
  out += "\",\"grid\":" + std::to_string(grid) +
         ",\"reps\":" + std::to_string(reps) + ",\"stages\":{";
  bool first = true;
  for (const StageRow& s : stages) append_stage(out, s, first);
  out += "},\"counters\":{";
  first = true;
  for (const char* c : counters) append_counter(out, snap, c, first);
  out += "}";
  // Deterministic solution-quality section: gated by the regression report
  // at a much tighter ratio than the (noisy) runtime stages.
  if (!quality_json.empty()) out += ",\"quality\":{" + quality_json + "}";
  out += "}\n";
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f << out;
  if (!f) {
    std::fprintf(stderr, "bench_regress: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), out.size());
}

}  // namespace
}  // namespace ganopc

int main(int argc, char** argv) {
  using namespace ganopc;
  std::string out_dir = ".";
  std::int32_t grid = 128;
  int reps = 5;
  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_regress: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--out") == 0) out_dir = need("--out");
    else if (std::strcmp(argv[i], "--grid") == 0) grid = std::atoi(need("--grid"));
    else if (std::strcmp(argv[i], "--reps") == 0) reps = std::atoi(need("--reps"));
    // --trace 1 arms span recording for the whole run so CI can price the
    // tracing fast path: diff a traced BENCH run against an untraced one.
    else if (std::strcmp(argv[i], "--trace") == 0)
      obs::set_trace_enabled(std::atoi(need("--trace")) != 0);
    else {
      std::fprintf(stderr,
                   "usage: bench_regress [--out DIR] [--grid N] [--reps N] "
                   "[--trace 0|1]\n");
      return 2;
    }
  }
  if (grid < 16 || reps < 1) {
    std::fprintf(stderr, "bench_regress: bad --grid/--reps\n");
    return 2;
  }
  const std::int32_t pixel = 2048 / grid;

  litho::OpticsConfig optics;
  litho::LithoSim sim(optics, litho::ResistConfig{}, grid, pixel);
  // The serving-path backend: the top-8 TCC eigen-kernels (`tcc:8`), i.e. the
  // same imaging operator compressed to a third of the Abbe kernel count.
  const litho::TccBackend tcc_backend(8, /*min_captured_energy=*/0.0);
  litho::LithoSim sim_tcc(tcc_backend.build(optics, grid, pixel),
                          litho::ResistConfig{});
  std::vector<geom::Grid> masks;
  for (int i = 0; i < 4; ++i) masks.push_back(wire_clip(grid, pixel, 64 * i));
  const geom::Grid& target = masks.front();

  obs::set_metrics_enabled(true);

  // --- litho stages, once per backend -------------------------------------
  // One untimed warm-up rep of the full workload fills the FFT plan cache
  // (including pv_band's upsampling transforms) and thread workspaces, so
  // the measured distribution reflects steady state — and the plan-cache
  // hit-rate counter proves the cache held: misses must stay 0. Each backend
  // gets its own obs window so its rows are not polluted by the other's.
  const auto litho_workload = [&](const litho::LithoSim& s) {
    for (const auto& m : masks) (void)s.simulate(m);
    (void)s.simulate_batch(masks);
    for (const auto& m : masks) (void)s.gradient(m, target);
    (void)s.pv_band(target);
  };
  litho_workload(sim);
  obs::reset_values();
  for (int r = 0; r < reps; ++r) litho_workload(sim);
  const obs::Snapshot litho_abbe = obs::snapshot();

  litho_workload(sim_tcc);
  obs::reset_values();
  for (int r = 0; r < reps; ++r) litho_workload(sim_tcc);
  const obs::Snapshot litho_tcc = obs::snapshot();

  write_report(out_dir + "/BENCH_litho.json", "litho", grid, reps, litho_abbe,
               {{&litho_abbe, "litho.simulate", "litho.simulate"},
                {&litho_abbe, "litho.simulate_batch", "litho.simulate_batch"},
                {&litho_abbe, "litho.aerial", "litho.aerial"},
                {&litho_abbe, "litho.gradient", "litho.gradient"},
                {&litho_abbe, "litho.pv_band", "litho.pv_band"},
                {&litho_tcc, "litho.simulate", "litho.simulate[tcc]"},
                {&litho_tcc, "litho.simulate_batch", "litho.simulate_batch[tcc]"},
                {&litho_tcc, "litho.aerial", "litho.aerial[tcc]"},
                {&litho_tcc, "litho.gradient", "litho.gradient[tcc]"},
                {&litho_tcc, "litho.pv_band", "litho.pv_band[tcc]"}},
               {"litho.simulate_batch.masks", "fft.plan_cache.hits",
                "fft.plan_cache.misses"});

  // --- ILT, once per backend ----------------------------------------------
  ilt::IltConfig cfg;
  cfg.max_iterations = 40;
  cfg.check_every = 5;
  const int ilt_reps = std::max(1, reps / 2);

  obs::reset_values();
  const ilt::IltEngine engine(sim, cfg);
  ilt::IltResult last;
  for (int r = 0; r < ilt_reps; ++r) last = engine.optimize(target);
  const obs::Snapshot ilt_abbe = obs::snapshot();

  obs::reset_values();
  const ilt::IltEngine engine_tcc(sim_tcc, cfg);
  ilt::IltResult last_tcc;
  for (int r = 0; r < ilt_reps; ++r) last_tcc = engine_tcc.optimize(target);
  const obs::Snapshot ilt_tcc = obs::snapshot();

  // The solver is deterministic in (workload, config), so the final L2/PVB
  // are exactly reproducible across runs of the same build; a drift here is
  // an algorithmic change, not noise. The TCC rows pin the serving backend's
  // solution quality (and retained trace) the same way.
  char quality[320];
  std::snprintf(quality, sizeof quality,
                "\"ilt_final_l2_px\":%.9g,\"ilt_final_pvb_nm2\":%lld,"
                "\"ilt_final_l2_px[tcc]\":%.9g,\"ilt_final_pvb_nm2[tcc]\":%lld,"
                "\"tcc_captured_energy\":%.9g",
                last.l2_px,
                static_cast<long long>(sim.pv_band(last.mask).area_nm2),
                last_tcc.l2_px,
                static_cast<long long>(sim_tcc.pv_band(last_tcc.mask).area_nm2),
                sim_tcc.kernels().captured_energy());
  write_report(out_dir + "/BENCH_ilt.json", "ilt", grid, ilt_reps, ilt_abbe,
               {{&ilt_abbe, "ilt.optimize", "ilt.optimize"},
                {&ilt_abbe, "litho.gradient", "litho.gradient"},
                {&ilt_abbe, "litho.aerial", "litho.aerial"},
                {&ilt_tcc, "ilt.optimize", "ilt.optimize[tcc]"},
                {&ilt_tcc, "litho.gradient", "litho.gradient[tcc]"},
                {&ilt_tcc, "litho.aerial", "litho.aerial[tcc]"}},
               {"ilt.iterations", "ilt.watchdog.terminations",
                "ilt.termination.converged", "ilt.termination.patience",
                "ilt.termination.target-reached"},
               quality);
  return 0;
}
