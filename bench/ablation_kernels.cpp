// Ablation: SOCS kernel count N_h (Eq. 2 picks 24).
//
// Sweeps the Abbe source sample count and measures (a) the aerial-image
// error against a dense 96-point reference and (b) the simulation cost.
// The paper's choice of N_h = 24 should land where the accuracy curve has
// flattened while the cost is still ~4x below the dense reference.
#include <cmath>
#include <cstdio>

#include "common/csv.hpp"
#include "common/timer.hpp"
#include "geometry/raster.hpp"
#include "litho/lithosim.hpp"

int main() {
  using namespace ganopc;
  std::printf("== Ablation: SOCS kernel count N_h (Eq. 2) ==\n\n");

  geom::Layout clip(geom::Rect{0, 0, 2048, 2048});
  clip.add({800, 400, 880, 1600});
  clip.add({1020, 400, 1100, 1200});
  clip.add({1240, 700, 1320, 1600});
  const geom::Grid mask = geom::rasterize(clip, 8, /*threshold=*/true);

  auto make_sim = [&](int kernels) {
    litho::OpticsConfig optics;
    optics.num_kernels = kernels;
    return litho::LithoSim(optics, litho::ResistConfig{}, 256, 8);
  };

  const litho::LithoSim reference = make_sim(96);
  const geom::Grid ref_aerial = reference.aerial(mask);

  CsvWriter csv("ablation_kernels.csv", {"num_kernels", "rms_error", "ms_per_aerial"});
  std::printf("%-6s %14s %16s\n", "N_h", "aerial RMS err", "ms per aerial");
  for (const int nh : {4, 8, 12, 16, 24, 32, 48}) {
    const litho::LithoSim sim = make_sim(nh);
    const geom::Grid aerial = sim.aerial(mask);
    double sq = 0.0;
    for (std::size_t i = 0; i < aerial.data.size(); ++i) {
      const double d = static_cast<double>(aerial.data[i]) - ref_aerial.data[i];
      sq += d * d;
    }
    const double rms = std::sqrt(sq / static_cast<double>(aerial.data.size()));

    WallTimer timer;
    const int reps = 10;
    for (int i = 0; i < reps; ++i) sim.aerial(mask);
    const double ms = timer.milliseconds() / reps;
    std::printf("%-6d %14.6f %16.2f%s\n", nh, rms, ms,
                nh == 24 ? "   <- paper's choice" : "");
    csv.row_numeric({static_cast<double>(nh), rms, ms});
  }
  std::printf("\nwrote ablation_kernels.csv\n");
  return 0;
}
