// Ablation A (§3.2): pair-input discriminator vs naive mask-only
// discriminator.
//
// The paper argues a mask-only discriminator cannot enforce the one-one
// target->mask mapping (Eq. 6): the generator can satisfy it by emitting ANY
// reference-like mask regardless of the input target. We train both variants
// with the SAME budget and report the L2-to-reference trajectory; the paired
// variant should reach a lower final L2.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_util.hpp"
#include "common/csv.hpp"

namespace {

float tail(const std::vector<float>& v) {
  const std::size_t take = std::max<std::size_t>(1, v.size() / 10);
  return std::accumulate(v.end() - static_cast<std::ptrdiff_t>(take), v.end(), 0.0f) /
         static_cast<float>(take);
}

}  // namespace

int main() {
  using namespace ganopc;
  core::GanOpcConfig cfg = bench::bench_config();
  cfg.gan_iterations = std::min(cfg.gan_iterations, 250);
  // Isolate the adversarial signal: drop the L2 regression term so the
  // discriminator alone drives the mapping (this is where pairing matters).
  cfg.alpha_l2 = 0.05f;
  std::printf("== Ablation: paired vs unpaired discriminator (§3.2) ==\n");
  std::printf("%d iterations, alpha_l2=%.2f (adversarial-dominated)\n\n",
              cfg.gan_iterations, cfg.alpha_l2);

  const litho::LithoSim sim(cfg.optics, litho::ResistConfig{}, cfg.litho_grid,
                            cfg.litho_pixel_nm());
  const core::Dataset dataset = bench::get_dataset(cfg, sim);

  CsvWriter csv("ablation_discriminator.csv", {"iteration", "paired_l2", "unpaired_l2"});
  std::vector<float> curves[2];
  for (const bool paired : {true, false}) {
    Prng rng(cfg.seed + 7);
    core::Generator g(cfg.gan_grid, cfg.base_channels, rng);
    core::Discriminator d(cfg.gan_grid, cfg.base_channels, rng, paired);
    Prng train_rng(cfg.seed + 8);
    core::GanOpcTrainer trainer(cfg, g, d, dataset, sim, train_rng);
    const core::TrainStats stats = trainer.train(cfg.gan_iterations);
    curves[paired ? 0 : 1] = stats.l2_history;
    std::printf("%-9s discriminator: L2 %.1f -> %.1f (tail mean %.1f)\n",
                paired ? "paired" : "unpaired", stats.l2_history.front(),
                stats.l2_history.back(), tail(stats.l2_history));
  }
  for (std::size_t i = 0; i < std::min(curves[0].size(), curves[1].size()); ++i)
    csv.row_numeric({static_cast<double>(i), curves[0][i], curves[1][i]});

  const float paired_tail = tail(curves[0]), unpaired_tail = tail(curves[1]);
  std::printf("\n%s (paired %.1f vs unpaired %.1f)\n",
              paired_tail <= unpaired_tail
                  ? "paired discriminator reaches lower L2 — matches §3.2's claim"
                  : "WARNING: unpaired won — §3.2 predicts the opposite",
              paired_tail, unpaired_tail);
  std::printf("wrote ablation_discriminator.csv\n");
  return 0;
}
