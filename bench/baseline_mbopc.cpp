// Baseline comparison (§1): model-based OPC vs ILT on the benchmark suite.
//
// The paper motivates ILT (and hence GAN-OPC) by noting that model-based
// flows "are highly restricted by their solution space". This bench
// quantifies that on our suite: MB-OPC converges in a couple of cheap
// iterations but leaves far more squared-L2 than the pixel-based ILT.
#include <cstdio>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/flow.hpp"
#include "geometry/raster.hpp"
#include "layout/benchmark_suite.hpp"
#include "mbopc/mbopc.hpp"

int main() {
  using namespace ganopc;
  const core::GanOpcConfig cfg = bench::bench_config();
  std::printf("== Baseline: model-based OPC vs ILT ==\n\n");

  const litho::LithoSim sim(cfg.optics, litho::ResistConfig{}, cfg.litho_grid,
                            cfg.litho_pixel_nm());
  const core::GanOpcFlow ilt_flow(cfg, nullptr, sim);
  mbopc::MbOpcConfig mb_cfg;
  const mbopc::MbOpcEngine mb_engine(sim, mb_cfg);

  const auto suite = layout::make_benchmark_suite(cfg.clip_nm);
  CsvWriter csv("baseline_mbopc.csv",
                {"case", "uncorrected_l2", "mbopc_l2", "mbopc_rt", "ilt_l2", "ilt_rt"});
  std::printf("%-4s | %12s | %10s %8s | %10s %8s\n", "ID", "uncorrected",
              "MB-OPC L2", "RT(s)", "ILT L2", "RT(s)");
  double sum_unc = 0, sum_mb = 0, sum_ilt = 0;
  const double px_area =
      static_cast<double>(sim.pixel_nm()) * static_cast<double>(sim.pixel_nm());
  for (const auto& bc : suite) {
    const geom::Grid target =
        geom::rasterize(bc.layout, cfg.litho_pixel_nm(), /*threshold=*/true);
    const double uncorrected = sim.l2_error(target, target) * px_area;
    const mbopc::MbOpcResult mb = mb_engine.optimize(bc.layout);
    const core::FlowResult ilt = ilt_flow.run_ilt_only(bc.layout);
    const double mb_l2 = mb.l2_px * px_area;
    std::printf("%-4d | %12.0f | %10.0f %8.2f | %10.0f %8.2f\n", bc.id, uncorrected,
                mb_l2, mb.runtime_s, ilt.l2_nm2, ilt.total_seconds());
    csv.row_numeric({static_cast<double>(bc.id), uncorrected, mb_l2, mb.runtime_s,
                     ilt.l2_nm2, ilt.total_seconds()});
    sum_unc += uncorrected;
    sum_mb += mb_l2;
    sum_ilt += ilt.l2_nm2;
  }
  std::printf("%-4s | %12.0f | %10.0f %8s | %10.0f %8s\n", "avg", sum_unc / 10,
              sum_mb / 10, "", sum_ilt / 10, "");
  std::printf("\nMB-OPC improves on the uncorrected mask but cannot reach ILT's\n"
              "pixel-level optimum — the restricted-solution-space gap the paper\n"
              "cites as motivation (wrote baseline_mbopc.csv)\n");
  return 0;
}
