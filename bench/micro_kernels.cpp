// Micro benchmarks (google-benchmark): the computational kernels whose cost
// dominates the flows — FFT, GEMM, aerial imaging, the Eq. (14) gradient,
// one full ILT step, and generator inference.
//
// The litho benches come in pairs: a `seed_ref` baseline re-implementing the
// engine as it stood before the plan-cache/workspace/parallel rework
// (per-stage recomputed twiddles, per-call allocations, strictly sequential
// kernel loops) next to the current path, so one binary reports before/after
// on identical inputs. Results are also written as CSV to micro_kernels.csv
// (override with GANOPC_BENCH_CSV=<path>).
#include <benchmark/benchmark.h>

#include <cmath>
#include <complex>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "common/prng.hpp"
#include "core/generator.hpp"
#include "fft/fft.hpp"
#include "geometry/grid.hpp"
#include "ilt/ilt.hpp"
#include "litho/lithosim.hpp"
#include "nn/gemm.hpp"

namespace {

using namespace ganopc;

// --------------------------------------------------------------------------
// Seed-reference engine (the "before" of the before/after pairs).
// --------------------------------------------------------------------------
namespace seed_ref {

using fft::cfloat;

void fft_inplace(cfloat* a, std::size_t n, bool inverse) {
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const cfloat wlen(static_cast<float>(std::cos(ang)),
                      static_cast<float>(std::sin(ang)));
    for (std::size_t i = 0; i < n; i += len) {
      cfloat w(1.0f, 0.0f);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cfloat u = a[i + k];
        const cfloat v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const float inv_n = 1.0f / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i) a[i] *= inv_n;
  }
}

void fft_2d(std::vector<cfloat>& data, std::size_t height, std::size_t width,
            bool inverse) {
  for (std::size_t r = 0; r < height; ++r)
    fft_inplace(data.data() + r * width, width, inverse);
  std::vector<cfloat> tmp(height);
  for (std::size_t c = 0; c < width; ++c) {
    for (std::size_t r = 0; r < height; ++r) tmp[r] = data[r * width + c];
    fft_inplace(tmp.data(), height, inverse);
    for (std::size_t r = 0; r < height; ++r) data[r * width + c] = tmp[r];
  }
}

void fields(const litho::LithoSim& sim, const geom::Grid& mask,
            std::vector<std::vector<cfloat>>& a_k, geom::Grid& aerial_image) {
  const auto& kernels = sim.kernels();
  const auto n = static_cast<std::size_t>(sim.grid_size());
  const std::size_t npx = n * n;
  std::vector<cfloat> mask_hat(mask.data.begin(), mask.data.end());
  fft_2d(mask_hat, n, n, false);

  aerial_image = geom::Grid(sim.grid_size(), sim.grid_size(), sim.pixel_nm(),
                            mask.origin_x, mask.origin_y);
  a_k.assign(static_cast<std::size_t>(kernels.count()), {});
  std::vector<double> intensity(npx, 0.0);
  for (int k = 0; k < kernels.count(); ++k) {
    auto& field = a_k[static_cast<std::size_t>(k)];
    field.resize(npx);
    const auto& hat = kernels.freq_kernel(k);
    for (std::size_t i = 0; i < npx; ++i) field[i] = mask_hat[i] * hat[i];
    fft_2d(field, n, n, true);
    const double w = kernels.weight(k);
    for (std::size_t i = 0; i < npx; ++i) intensity[i] += w * std::norm(field[i]);
  }
  for (std::size_t i = 0; i < npx; ++i)
    aerial_image.data[i] = static_cast<float>(intensity[i]);
}

geom::Grid aerial(const litho::LithoSim& sim, const geom::Grid& mask) {
  std::vector<std::vector<cfloat>> a_k;
  geom::Grid out;
  fields(sim, mask, a_k, out);
  return out;
}

geom::Grid gradient(const litho::LithoSim& sim, const geom::Grid& mask_b,
                    const geom::Grid& target, float dose = 1.0f) {
  const auto& kernels = sim.kernels();
  const auto n = static_cast<std::size_t>(sim.grid_size());
  const std::size_t npx = n * n;

  std::vector<std::vector<cfloat>> a_k;
  geom::Grid aerial_image;
  fields(sim, mask_b, a_k, aerial_image);

  std::vector<float> x(npx);
  const float alpha = sim.sigmoid_alpha();
  const float th = sim.threshold();
  for (std::size_t i = 0; i < npx; ++i) {
    const float zi =
        1.0f / (1.0f + std::exp(-alpha * (aerial_image.data[i] * dose - th)));
    x[i] = 2.0f * (zi - target.data[i]) * alpha * dose * zi * (1.0f - zi);
  }

  geom::Grid grad(sim.grid_size(), sim.grid_size(), sim.pixel_nm(), mask_b.origin_x,
                  mask_b.origin_y);
  std::vector<double> acc(npx, 0.0);
  std::vector<cfloat> buf(npx);
  for (int k = 0; k < kernels.count(); ++k) {
    const auto& field = a_k[static_cast<std::size_t>(k)];
    for (std::size_t i = 0; i < npx; ++i) buf[i] = x[i] * std::conj(field[i]);
    fft_2d(buf, n, n, false);
    const auto& hat_flipped = kernels.freq_kernel_flipped(k);
    for (std::size_t i = 0; i < npx; ++i) buf[i] *= hat_flipped[i];
    fft_2d(buf, n, n, true);
    const double w = 2.0 * kernels.weight(k);
    for (std::size_t i = 0; i < npx; ++i) acc[i] += w * buf[i].real();
  }
  for (std::size_t i = 0; i < npx; ++i) grad.data[i] = static_cast<float>(acc[i]);
  return grad;
}

}  // namespace seed_ref

// --------------------------------------------------------------------------
// Generic kernels.
// --------------------------------------------------------------------------

void BM_Fft2d(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(1);
  std::vector<fft::cfloat> data(n * n);
  for (auto& v : data)
    v = {static_cast<float>(rng.uniform(-1, 1)), static_cast<float>(rng.uniform(-1, 1))};
  for (auto _ : state) {
    fft::fft_2d(data, n, n, false);
    fft::fft_2d(data, n, n, true);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_Fft2d)->Arg(64)->Arg(128)->Arg(256);

void BM_Fft2dSeed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(1);
  std::vector<fft::cfloat> data(n * n);
  for (auto& v : data)
    v = {static_cast<float>(rng.uniform(-1, 1)), static_cast<float>(rng.uniform(-1, 1))};
  for (auto _ : state) {
    seed_ref::fft_2d(data, n, n, false);
    seed_ref::fft_2d(data, n, n, true);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_Fft2dSeed)->Arg(64)->Arg(128)->Arg(256);

void BM_Sgemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(2);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    nn::matmul(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(n) * n * n);
}
BENCHMARK(BM_Sgemm)->Arg(64)->Arg(128)->Arg(256);

// --------------------------------------------------------------------------
// Lithography forward / adjoint, before and after.
// --------------------------------------------------------------------------

const litho::LithoSim& shared_sim(std::int32_t grid) {
  static litho::LithoSim sim128 = [] {
    litho::OpticsConfig optics;
    return litho::LithoSim(optics, litho::ResistConfig{}, 128, 16);
  }();
  static litho::LithoSim sim256 = [] {
    litho::OpticsConfig optics;
    return litho::LithoSim(optics, litho::ResistConfig{}, 256, 8);
  }();
  return grid == 128 ? sim128 : sim256;
}

geom::Grid bench_mask(std::int32_t grid) {
  geom::Grid mask(grid, grid, 2048 / grid);
  for (std::int32_t r = grid / 4; r < 3 * grid / 4; ++r)
    for (std::int32_t c = grid / 2 - grid / 16; c < grid / 2 + grid / 16; ++c)
      mask.at(r, c) = 1.0f;
  return mask;
}

void BM_LithoAerialSeed(benchmark::State& state) {
  const auto grid = static_cast<std::int32_t>(state.range(0));
  const auto& sim = shared_sim(grid);
  const geom::Grid mask = bench_mask(grid);
  for (auto _ : state) {
    auto aerial = seed_ref::aerial(sim, mask);
    benchmark::DoNotOptimize(aerial.data.data());
  }
}
BENCHMARK(BM_LithoAerialSeed)->Arg(128)->Arg(256);

void BM_LithoAerial(benchmark::State& state) {
  const auto grid = static_cast<std::int32_t>(state.range(0));
  const auto& sim = shared_sim(grid);
  const geom::Grid mask = bench_mask(grid);
  for (auto _ : state) {
    auto aerial = sim.aerial(mask);
    benchmark::DoNotOptimize(aerial.data.data());
  }
}
BENCHMARK(BM_LithoAerial)->Arg(128)->Arg(256);

void BM_LithoAerialWorkspace(benchmark::State& state) {
  // Steady-state ILT shape: caller-owned output and scratch, zero allocation
  // per call once warm.
  const auto grid = static_cast<std::int32_t>(state.range(0));
  const auto& sim = shared_sim(grid);
  const geom::Grid mask = bench_mask(grid);
  litho::LithoWorkspace ws;
  geom::Grid out;
  for (auto _ : state) {
    sim.aerial_into(mask, out, ws);
    benchmark::DoNotOptimize(out.data.data());
  }
}
BENCHMARK(BM_LithoAerialWorkspace)->Arg(128)->Arg(256);

void BM_LithoGradientSeed(benchmark::State& state) {
  const auto grid = static_cast<std::int32_t>(state.range(0));
  const auto& sim = shared_sim(grid);
  const geom::Grid mask = bench_mask(grid);
  for (auto _ : state) {
    auto grad = seed_ref::gradient(sim, mask, mask);
    benchmark::DoNotOptimize(grad.data.data());
  }
}
BENCHMARK(BM_LithoGradientSeed)->Arg(128)->Arg(256);

void BM_LithoGradient(benchmark::State& state) {
  const auto grid = static_cast<std::int32_t>(state.range(0));
  const auto& sim = shared_sim(grid);
  const geom::Grid mask = bench_mask(grid);
  for (auto _ : state) {
    auto grad = sim.gradient(mask, mask);
    benchmark::DoNotOptimize(grad.data.data());
  }
}
BENCHMARK(BM_LithoGradient)->Arg(128)->Arg(256);

void BM_LithoGradientWorkspace(benchmark::State& state) {
  const auto grid = static_cast<std::int32_t>(state.range(0));
  const auto& sim = shared_sim(grid);
  const geom::Grid mask = bench_mask(grid);
  litho::LithoWorkspace ws;
  geom::Grid grad;
  const float doses[1] = {1.0f};
  for (auto _ : state) {
    sim.gradient_into(mask, mask, doses, grad, ws);
    benchmark::DoNotOptimize(grad.data.data());
  }
}
BENCHMARK(BM_LithoGradientWorkspace)->Arg(128)->Arg(256);

void BM_LithoGradientPv3Seed(benchmark::State& state) {
  // Dose-corner objective the seed way: one full gradient per corner.
  const auto& sim = shared_sim(128);
  const geom::Grid mask = bench_mask(128);
  for (auto _ : state) {
    geom::Grid lo = seed_ref::gradient(sim, mask, mask, 0.98f);
    const geom::Grid mid = seed_ref::gradient(sim, mask, mask, 1.0f);
    const geom::Grid hi = seed_ref::gradient(sim, mask, mask, 1.02f);
    for (std::size_t i = 0; i < lo.data.size(); ++i)
      lo.data[i] = (lo.data[i] + mid.data[i] + hi.data[i]) / 3.0f;
    benchmark::DoNotOptimize(lo.data.data());
  }
}
BENCHMARK(BM_LithoGradientPv3Seed)->Unit(benchmark::kMillisecond);

void BM_LithoGradientPv3(benchmark::State& state) {
  // Fused: forward fields computed once, shared by all three corners.
  const auto& sim = shared_sim(128);
  const geom::Grid mask = bench_mask(128);
  litho::LithoWorkspace ws;
  geom::Grid grad;
  const float doses[3] = {0.98f, 1.0f, 1.02f};
  for (auto _ : state) {
    sim.gradient_into(mask, mask, doses, grad, ws);
    benchmark::DoNotOptimize(grad.data.data());
  }
}
BENCHMARK(BM_LithoGradientPv3)->Unit(benchmark::kMillisecond);

void BM_LithoBatch(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto& sim = shared_sim(128);
  std::vector<geom::Grid> masks(count, bench_mask(128));
  for (std::size_t i = 0; i < count; ++i)
    masks[i].at(static_cast<std::int32_t>(8 + i), 8) = 1.0f;  // distinct inputs
  for (auto _ : state) {
    auto prints = sim.simulate_batch(masks);
    benchmark::DoNotOptimize(prints.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_LithoBatch)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_PvBand(benchmark::State& state) {
  const auto grid = static_cast<std::int32_t>(state.range(0));
  const auto& sim = shared_sim(grid);
  const geom::Grid mask = bench_mask(grid);
  for (auto _ : state) {
    auto band = sim.pv_band(mask);
    benchmark::DoNotOptimize(band.area_nm2);
  }
}
BENCHMARK(BM_PvBand)->Arg(128)->Arg(256);

// --------------------------------------------------------------------------
// ILT iteration, before and after.
// --------------------------------------------------------------------------

void BM_IltIterationSeed(benchmark::State& state) {
  // The per-iteration arithmetic of the seed ILT loop: Eq. (14) gradient via
  // the seed engine, the Eq. (13) chain + parameter update, and the periodic
  // hard-print check via a second seed forward pass.
  const auto& sim = shared_sim(128);
  const geom::Grid target = bench_mask(128);
  const std::size_t npx = target.data.size();
  std::vector<float> p(npx, 0.0f);
  geom::Grid mask_b = target;
  for (auto _ : state) {
    const geom::Grid grad = seed_ref::gradient(sim, mask_b, target);
    float max_abs = 0.0f;
    std::vector<float> grad_p(npx);
    for (std::size_t i = 0; i < npx; ++i) {
      const float mb = mask_b.data[i];
      grad_p[i] = grad.data[i] * 4.0f * mb * (1.0f - mb);
      max_abs = std::max(max_abs, std::fabs(grad_p[i]));
    }
    const float scale = max_abs > 0.0f ? 0.5f / max_abs : 0.5f;
    for (std::size_t i = 0; i < npx; ++i) p[i] -= scale * grad_p[i];
    for (std::size_t i = 0; i < npx; ++i)
      mask_b.data[i] = 1.0f / (1.0f + std::exp(-4.0f * p[i]));
    geom::Grid hard = seed_ref::aerial(sim, mask_b);
    for (auto& v : hard.data) v = v >= sim.threshold() ? 1.0f : 0.0f;
    benchmark::DoNotOptimize(hard.data.data());
  }
}
BENCHMARK(BM_IltIterationSeed)->Unit(benchmark::kMillisecond);

void BM_IltIteration(benchmark::State& state) {
  // One real engine iteration (max_iterations=1, check_every=1): gradient,
  // update and hard-print check on the hoisted workspace path.
  const auto& sim = shared_sim(128);
  const geom::Grid target = bench_mask(128);
  ilt::IltConfig cfg;
  cfg.max_iterations = 1;
  cfg.check_every = 1;
  cfg.patience = 1;
  const ilt::IltEngine engine(sim, cfg);
  for (auto _ : state) {
    auto result = engine.optimize(target);
    benchmark::DoNotOptimize(result.l2_px);
  }
}
BENCHMARK(BM_IltIteration)->Unit(benchmark::kMillisecond);

void BM_IltFullRun(benchmark::State& state) {
  const auto& sim = shared_sim(128);
  const geom::Grid target = bench_mask(128);
  ilt::IltConfig cfg;
  cfg.max_iterations = static_cast<int>(state.range(0));
  cfg.check_every = 10;
  const ilt::IltEngine engine(sim, cfg);
  for (auto _ : state) {
    auto result = engine.optimize(target);
    benchmark::DoNotOptimize(result.l2_px);
  }
}
BENCHMARK(BM_IltFullRun)->Arg(10)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_GeneratorInference(benchmark::State& state) {
  const auto size = static_cast<std::int64_t>(state.range(0));
  Prng rng(3);
  core::Generator g(size, 8, rng);
  geom::Grid target(static_cast<std::int32_t>(size), static_cast<std::int32_t>(size),
                    2048 / static_cast<std::int32_t>(size));
  for (std::int32_t r = 8; r < size - 8; ++r) target.at(r, static_cast<std::int32_t>(size) / 2) = 1.0f;
  for (auto _ : state) {
    auto mask = g.infer(target);
    benchmark::DoNotOptimize(mask.data.data());
  }
}
BENCHMARK(BM_GeneratorInference)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

// Every run also lands in micro_kernels.csv (override with
// GANOPC_BENCH_CSV=<path>) so before/after sweeps — e.g. under different
// GANOPC_THREADS — can be diffed mechanically. Explicit --benchmark_out flags
// on the command line still win: they come after the injected defaults.
int main(int argc, char** argv) {
  const char* csv_env = std::getenv("GANOPC_BENCH_CSV");
  std::string out_flag =
      std::string("--benchmark_out=") + (csv_env != nullptr ? csv_env : "micro_kernels.csv");
  std::string fmt_flag = "--benchmark_out_format=csv";
  std::vector<char*> args;
  args.push_back(argv[0]);
  args.push_back(out_flag.data());
  args.push_back(fmt_flag.data());
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
