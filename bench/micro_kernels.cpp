// Micro benchmarks (google-benchmark): the computational kernels whose cost
// dominates the flows — FFT, GEMM, aerial imaging, the Eq. (14) gradient,
// one full ILT step, and generator inference.
#include <benchmark/benchmark.h>

#include "common/prng.hpp"
#include "core/generator.hpp"
#include "fft/fft.hpp"
#include "geometry/grid.hpp"
#include "ilt/ilt.hpp"
#include "litho/lithosim.hpp"
#include "nn/gemm.hpp"

namespace {

using namespace ganopc;

void BM_Fft2d(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(1);
  std::vector<fft::cfloat> data(n * n);
  for (auto& v : data)
    v = {static_cast<float>(rng.uniform(-1, 1)), static_cast<float>(rng.uniform(-1, 1))};
  for (auto _ : state) {
    fft::fft_2d(data, n, n, false);
    fft::fft_2d(data, n, n, true);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_Fft2d)->Arg(64)->Arg(128)->Arg(256);

void BM_Sgemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(2);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    nn::matmul(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(n) * n * n);
}
BENCHMARK(BM_Sgemm)->Arg(64)->Arg(128)->Arg(256);

const litho::LithoSim& shared_sim(std::int32_t grid) {
  static litho::LithoSim sim128 = [] {
    litho::OpticsConfig optics;
    return litho::LithoSim(optics, litho::ResistConfig{}, 128, 16);
  }();
  static litho::LithoSim sim256 = [] {
    litho::OpticsConfig optics;
    return litho::LithoSim(optics, litho::ResistConfig{}, 256, 8);
  }();
  return grid == 128 ? sim128 : sim256;
}

geom::Grid bench_mask(std::int32_t grid) {
  geom::Grid mask(grid, grid, 2048 / grid);
  for (std::int32_t r = grid / 4; r < 3 * grid / 4; ++r)
    for (std::int32_t c = grid / 2 - grid / 16; c < grid / 2 + grid / 16; ++c)
      mask.at(r, c) = 1.0f;
  return mask;
}

void BM_LithoAerial(benchmark::State& state) {
  const auto grid = static_cast<std::int32_t>(state.range(0));
  const auto& sim = shared_sim(grid);
  const geom::Grid mask = bench_mask(grid);
  for (auto _ : state) {
    auto aerial = sim.aerial(mask);
    benchmark::DoNotOptimize(aerial.data.data());
  }
}
BENCHMARK(BM_LithoAerial)->Arg(128)->Arg(256);

void BM_LithoGradient(benchmark::State& state) {
  const auto grid = static_cast<std::int32_t>(state.range(0));
  const auto& sim = shared_sim(grid);
  const geom::Grid mask = bench_mask(grid);
  for (auto _ : state) {
    auto grad = sim.gradient(mask, mask);
    benchmark::DoNotOptimize(grad.data.data());
  }
}
BENCHMARK(BM_LithoGradient)->Arg(128)->Arg(256);

void BM_PvBand(benchmark::State& state) {
  const auto grid = static_cast<std::int32_t>(state.range(0));
  const auto& sim = shared_sim(grid);
  const geom::Grid mask = bench_mask(grid);
  for (auto _ : state) {
    auto band = sim.pv_band(mask);
    benchmark::DoNotOptimize(band.area_nm2);
  }
}
BENCHMARK(BM_PvBand)->Arg(128)->Arg(256);

void BM_IltFullRun(benchmark::State& state) {
  const auto& sim = shared_sim(128);
  const geom::Grid target = bench_mask(128);
  ilt::IltConfig cfg;
  cfg.max_iterations = static_cast<int>(state.range(0));
  cfg.check_every = 10;
  const ilt::IltEngine engine(sim, cfg);
  for (auto _ : state) {
    auto result = engine.optimize(target);
    benchmark::DoNotOptimize(result.l2_px);
  }
}
BENCHMARK(BM_IltFullRun)->Arg(10)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_GeneratorInference(benchmark::State& state) {
  const auto size = static_cast<std::int64_t>(state.range(0));
  Prng rng(3);
  core::Generator g(size, 8, rng);
  geom::Grid target(static_cast<std::int32_t>(size), static_cast<std::int32_t>(size),
                    2048 / static_cast<std::int32_t>(size));
  for (std::int32_t r = 8; r < size - 8; ++r) target.at(r, static_cast<std::int32_t>(size) / 2) = 1.0f;
  for (auto _ : state) {
    auto mask = g.infer(target);
    benchmark::DoNotOptimize(mask.data.data());
  }
}
BENCHMARK(BM_GeneratorInference)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
