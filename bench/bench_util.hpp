// Shared plumbing for the reproduction benches.
//
// All table/figure binaries run at a "bench" scale that finishes in minutes
// on a CPU; set GANOPC_SCALE=quick|default|paper to override. Expensive
// artifacts (the ILT ground-truth dataset, trained generators) are cached in
// ./ganopc_bench_cache keyed by the geometry, so running the whole bench
// directory reuses work:
//   figure7_training_curves  trains GAN-OPC + PGAN-OPC and saves both
//   figure8_visuals/table2   load the saved generators when present
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/prng.hpp"
#include "core/config.hpp"
#include "core/dataset.hpp"
#include "core/discriminator.hpp"
#include "core/generator.hpp"
#include "core/trainer.hpp"
#include "litho/lithosim.hpp"
#include "nn/serialize.hpp"

namespace ganopc::bench {

inline core::GanOpcConfig bench_config() {
  if (const char* env = std::getenv("GANOPC_SCALE"))
    return core::make_config(core::parse_scale(env));
  // Bench default: 128 litho grid (16nm pixels) with a 64 GAN grid and a
  // meatier training budget than the unit-test preset.
  core::GanOpcConfig cfg = core::make_config(core::ReproScale::Quick);
  cfg.litho_grid = 128;
  cfg.gan_grid = 64;
  cfg.base_channels = 8;
  cfg.library_size = 32;
  cfg.batch_size = 4;
  cfg.gan_iterations = 500;
  cfg.pretrain_iterations = 60;
  cfg.ilt.max_iterations = 200;
  cfg.ilt.check_every = 5;
  cfg.ilt.patience = 4;
  cfg.validate();
  return cfg;
}

inline std::string cache_dir() {
  const std::string dir = "ganopc_bench_cache";
  std::filesystem::create_directories(dir);
  return dir;
}

inline std::string geometry_tag(const core::GanOpcConfig& cfg) {
  return "l" + std::to_string(cfg.litho_grid) + "_g" + std::to_string(cfg.gan_grid) +
         "_c" + std::to_string(cfg.base_channels) + "_n" +
         std::to_string(cfg.library_size);
}

/// Load the cached dataset for this geometry or generate (and cache) it.
inline core::Dataset get_dataset(const core::GanOpcConfig& cfg,
                                 const litho::LithoSim& sim) {
  const std::string path = cache_dir() + "/dataset_" + geometry_tag(cfg) + ".bin";
  if (std::filesystem::exists(path)) {
    std::printf("[cache] loading dataset from %s\n", path.c_str());
    return core::Dataset::load(path, cfg);
  }
  std::printf("[cache] generating dataset (%zu clips, ILT ground truth)...\n",
              cfg.library_size);
  core::Dataset ds = core::Dataset::generate(cfg, sim);
  ds.save(path);
  return ds;
}

inline std::string generator_path(const core::GanOpcConfig& cfg, bool pretrained) {
  return cache_dir() + "/" + (pretrained ? "pgan" : "gan") + "_generator_" +
         geometry_tag(cfg) + ".bin";
}

/// Train a generator (optionally with ILT-guided pre-training) and cache it,
/// or load it when already cached. `stats_out` receives the adversarial
/// l2 history only when training actually runs.
inline core::Generator get_generator(const core::GanOpcConfig& cfg,
                                     const litho::LithoSim& sim,
                                     const core::Dataset& dataset, bool pretrained,
                                     core::TrainStats* stats_out = nullptr,
                                     bool force_train = false) {
  Prng rng(cfg.seed + (pretrained ? 100 : 200));
  core::Generator generator(cfg.gan_grid, cfg.base_channels, rng);
  const std::string path = generator_path(cfg, pretrained);
  if (!force_train && std::filesystem::exists(path)) {
    std::printf("[cache] loading %s generator from %s\n",
                pretrained ? "PGAN-OPC" : "GAN-OPC", path.c_str());
    nn::load_parameters(generator.net(), path);
    return generator;
  }
  core::Discriminator discriminator(cfg.gan_grid, cfg.base_channels, rng, true, cfg.d_dropout);
  Prng train_rng(cfg.seed + (pretrained ? 300 : 400));
  core::GanOpcTrainer trainer(cfg, generator, discriminator, dataset, sim, train_rng);
  if (pretrained) {
    std::printf("[train] ILT-guided pre-training: %d iterations\n",
                cfg.pretrain_iterations);
    trainer.pretrain(cfg.pretrain_iterations);
  }
  std::printf("[train] adversarial training: %d iterations\n", cfg.gan_iterations);
  const core::TrainStats stats = trainer.train(cfg.gan_iterations);
  if (stats_out != nullptr) *stats_out = stats;
  nn::save_parameters(generator.net(), path);
  return generator;
}

}  // namespace ganopc::bench
