// Figure 2 reproduction: the defect-detector zoo (EPE / neck / bridge) on
// constructed prints, demonstrating the paper's point that no single
// detector captures printability — which motivates the squared-L2 metric
// (Definition 1).
#include <cstdio>

#include "geometry/bitmap_ops.hpp"
#include "geometry/raster.hpp"
#include "metrics/defects.hpp"
#include "metrics/epe.hpp"

namespace {

using namespace ganopc;

geom::Grid raster(const geom::Layout& l) {
  return geom::rasterize(l, 4, /*threshold=*/true);
}

void report(const char* name, const geom::Layout& target, const geom::Layout& printed) {
  const geom::Grid tg = raster(target);
  const geom::Grid wg = raster(printed);
  const auto epe = metrics::measure_epe(target, wg);
  const auto necks = metrics::detect_necks(target, wg);
  const auto bridges = metrics::detect_bridges(tg, wg);
  const auto breaks = metrics::detect_breaks(tg, wg);
  const double l2 = geom::squared_l2(wg, tg) * 16.0;  // 4nm pixels -> nm^2
  std::printf("%-28s EPEV=%-3d neck=%-2zu bridge=%-2zu break=%-2zu L2=%8.0f nm^2\n",
              name, epe.violations, necks.size(), bridges.size(), breaks.size(), l2);
}

}  // namespace

int main() {
  std::printf("== Figure 2: defect types and why single detectors mislead ==\n\n");

  geom::Layout target(geom::Rect{0, 0, 1024, 1024});
  target.add({200, 150, 280, 850});
  target.add({420, 150, 500, 850});

  // (a) clean print: every detector quiet.
  report("clean print", target, target);

  // (b) line-end pullback: EPE fires, CD detectors stay quiet.
  {
    geom::Layout printed(target.clip());
    printed.add({200, 220, 280, 780});  // 70nm pullback both ends
    printed.add({420, 150, 500, 850});
    report("line-end pullback (EPE)", target, printed);
  }

  // (c) neck: printed CD pinches mid-wire while edges near the control
  //     points remain close to target — small EPE, real defect.
  {
    geom::Layout printed(target.clip());
    printed.add({200, 150, 280, 470});
    printed.add({224, 470, 256, 530});  // 32nm pinch
    printed.add({200, 530, 280, 850});
    printed.add({420, 150, 500, 850});
    report("mid-wire neck", target, printed);
  }

  // (d) bridge: an unexpected short between the two wires.
  {
    geom::Layout printed(target.clip());
    printed.add({200, 150, 280, 850});
    printed.add({420, 150, 500, 850});
    printed.add({280, 480, 420, 540});  // the short
    report("wire bridge", target, printed);
  }

  // (e) broken wire: the wafer splits one target shape in two.
  {
    geom::Layout printed(target.clip());
    printed.add({200, 150, 280, 460});
    printed.add({200, 540, 280, 850});
    printed.add({420, 150, 500, 850});
    report("broken wire", target, printed);
  }

  std::printf("\nSame-looking EPE counts hide different failure modes, and small\n"
              "EPE can coexist with bridges/necks — hence the paper optimizes the\n"
              "squared L2 of the full wafer image (Definition 1).\n");
  return 0;
}
