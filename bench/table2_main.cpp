// Table 2 reproduction: per-case squared L2 / PVB / runtime for the ILT [7]
// baseline, GAN-OPC and PGAN-OPC on the 10-case benchmark suite.
//
// The suite stands in for the ICCAD-2013 contest clips (areas match the
// paper's Area column); the lithography engine is the Abbe-kernel Hopkins
// model; absolute numbers therefore differ from the paper, but the *shape*
// — GAN flows cutting runtime roughly in half at equal-or-better L2, PGAN
// edging out GAN — is the reproduction target. Paper ratios are printed
// alongside for comparison.
//
// Scale via GANOPC_SCALE=quick|default|paper (default: bench scale).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/flow.hpp"
#include "layout/benchmark_suite.hpp"

namespace {

struct Row {
  double l2 = 0.0, pvb = 0.0, rt = 0.0;
};

}  // namespace

int main() {
  using namespace ganopc;
  const core::GanOpcConfig cfg = bench::bench_config();
  std::printf("== Table 2: comparison with the ILT baseline ==\n");
  std::printf("geometry: litho %d @%dnm, gan %d; ILT budget %d iters\n\n",
              cfg.litho_grid, cfg.litho_pixel_nm(), cfg.gan_grid,
              cfg.ilt.max_iterations);

  const litho::LithoSim sim(cfg.optics, litho::ResistConfig{}, cfg.litho_grid,
                            cfg.litho_pixel_nm());
  const core::Dataset dataset = bench::get_dataset(cfg, sim);
  core::Generator gan = bench::get_generator(cfg, sim, dataset, /*pretrained=*/false);
  core::Generator pgan = bench::get_generator(cfg, sim, dataset, /*pretrained=*/true);

  const auto suite = layout::make_benchmark_suite(cfg.clip_nm);
  const core::GanOpcFlow ilt_flow(cfg, nullptr, sim);
  const core::GanOpcFlow gan_flow(cfg, &gan, sim);
  const core::GanOpcFlow pgan_flow(cfg, &pgan, sim);

  CsvWriter csv("table2_results.csv",
                {"case", "area_nm2", "ilt_l2", "ilt_pvb", "ilt_rt", "gan_l2", "gan_pvb",
                 "gan_rt", "pgan_l2", "pgan_pvb", "pgan_rt"});

  std::printf("%-4s %-9s | %9s %9s %7s | %9s %9s %7s | %9s %9s %7s\n", "ID",
              "Area", "ILT L2", "PVB", "RT(s)", "GAN L2", "PVB", "RT(s)", "PGAN L2",
              "PVB", "RT(s)");
  Row ilt_sum, gan_sum, pgan_sum;
  for (const auto& bc : suite) {
    const core::FlowResult r_ilt = ilt_flow.run_ilt_only(bc.layout);
    const core::FlowResult r_gan = gan_flow.run(bc.layout);
    const core::FlowResult r_pgan = pgan_flow.run(bc.layout);
    std::printf("%-4d %-9ld | %9.0f %9ld %7.2f | %9.0f %9ld %7.2f | %9.0f %9ld %7.2f\n",
                bc.id, static_cast<long>(bc.layout.union_area()), r_ilt.l2_nm2,
                static_cast<long>(r_ilt.pvb_nm2), r_ilt.total_seconds(), r_gan.l2_nm2,
                static_cast<long>(r_gan.pvb_nm2), r_gan.total_seconds(), r_pgan.l2_nm2,
                static_cast<long>(r_pgan.pvb_nm2), r_pgan.total_seconds());
    csv.row_numeric({static_cast<double>(bc.id),
                     static_cast<double>(bc.layout.union_area()), r_ilt.l2_nm2,
                     static_cast<double>(r_ilt.pvb_nm2), r_ilt.total_seconds(),
                     r_gan.l2_nm2, static_cast<double>(r_gan.pvb_nm2),
                     r_gan.total_seconds(), r_pgan.l2_nm2,
                     static_cast<double>(r_pgan.pvb_nm2), r_pgan.total_seconds()});
    ilt_sum.l2 += r_ilt.l2_nm2;
    ilt_sum.pvb += static_cast<double>(r_ilt.pvb_nm2);
    ilt_sum.rt += r_ilt.total_seconds();
    gan_sum.l2 += r_gan.l2_nm2;
    gan_sum.pvb += static_cast<double>(r_gan.pvb_nm2);
    gan_sum.rt += r_gan.total_seconds();
    pgan_sum.l2 += r_pgan.l2_nm2;
    pgan_sum.pvb += static_cast<double>(r_pgan.pvb_nm2);
    pgan_sum.rt += r_pgan.total_seconds();
  }
  const double n = static_cast<double>(suite.size());
  std::printf("%-14s | %9.1f %9.1f %7.2f | %9.1f %9.1f %7.2f | %9.1f %9.1f %7.2f\n",
              "Average", ilt_sum.l2 / n, ilt_sum.pvb / n, ilt_sum.rt / n,
              gan_sum.l2 / n, gan_sum.pvb / n, gan_sum.rt / n, pgan_sum.l2 / n,
              pgan_sum.pvb / n, pgan_sum.rt / n);
  std::printf("%-14s | %9s %9s %7s | %9.3f %9.3f %7.3f | %9.3f %9.3f %7.3f\n",
              "Ratio (ours)", "1.000", "1.000", "1.000", gan_sum.l2 / ilt_sum.l2,
              gan_sum.pvb / ilt_sum.pvb, gan_sum.rt / ilt_sum.rt,
              pgan_sum.l2 / ilt_sum.l2, pgan_sum.pvb / ilt_sum.pvb,
              pgan_sum.rt / ilt_sum.rt);
  std::printf("%-14s | %9s %9s %7s | %9.3f %9.3f %7.3f | %9.3f %9.3f %7.3f\n",
              "Ratio (paper)", "1.000", "1.000", "1.000", 0.911, 0.993, 0.488, 0.908,
              0.981, 0.471);
  std::printf("\nwrote table2_results.csv\n");
  return 0;
}
