// Figure 7 reproduction: training curves of GAN-OPC (random init) vs
// PGAN-OPC (ILT-guided pre-training, Algorithm 2), both measured as the
// squared L2 between generator outputs and reference masks (Eq. 9).
//
// Expected shape (paper §4): PGAN-OPC's curve descends more smoothly and
// converges to a LOWER final loss; plain GAN-OPC may dip faster at first
// but plateaus higher. The curves land in figure7_curves.csv.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_util.hpp"
#include "common/csv.hpp"

namespace {

float mean_tail(const std::vector<float>& v, std::size_t n) {
  const std::size_t take = std::min(n, v.size());
  if (take == 0) return 0.0f;
  return std::accumulate(v.end() - static_cast<std::ptrdiff_t>(take), v.end(), 0.0f) /
         static_cast<float>(take);
}

// Curve roughness: mean absolute one-step change, normalized by the mean
// level — PGAN's curve should be smoother (lower).
float roughness(const std::vector<float>& v) {
  if (v.size() < 2) return 0.0f;
  double jump = 0.0, level = 0.0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    jump += std::abs(static_cast<double>(v[i]) - v[i - 1]);
    level += v[i];
  }
  return static_cast<float>(jump / std::max(level, 1e-9));
}

}  // namespace

int main() {
  using namespace ganopc;
  const core::GanOpcConfig cfg = bench::bench_config();
  std::printf("== Figure 7: GAN-OPC vs PGAN-OPC training curves ==\n");
  std::printf("gan %dx%d, %d adversarial iterations, %d pre-training iterations\n\n",
              cfg.gan_grid, cfg.gan_grid, cfg.gan_iterations, cfg.pretrain_iterations);

  const litho::LithoSim sim(cfg.optics, litho::ResistConfig{}, cfg.litho_grid,
                            cfg.litho_pixel_nm());
  const core::Dataset dataset = bench::get_dataset(cfg, sim);

  core::TrainStats gan_stats, pgan_stats;
  bench::get_generator(cfg, sim, dataset, /*pretrained=*/false, &gan_stats,
                       /*force_train=*/true);
  bench::get_generator(cfg, sim, dataset, /*pretrained=*/true, &pgan_stats,
                       /*force_train=*/true);

  const auto& g = gan_stats.l2_history;
  const auto& p = pgan_stats.l2_history;
  CsvWriter csv("figure7_curves.csv", {"iteration", "gan_opc_l2", "pgan_opc_l2"});
  for (std::size_t i = 0; i < std::min(g.size(), p.size()); ++i)
    csv.row_numeric({static_cast<double>(i), g[i], p[i]});

  // Console rendition: decimated series.
  const std::size_t steps = std::min<std::size_t>(16, g.size());
  std::printf("%-10s %12s %12s\n", "iteration", "GAN-OPC", "PGAN-OPC");
  for (std::size_t s = 0; s < steps; ++s) {
    const std::size_t i = s * (g.size() - 1) / std::max<std::size_t>(steps - 1, 1);
    std::printf("%-10zu %12.1f %12.1f\n", i, g[i], p[i]);
  }
  const float g_final = mean_tail(g, g.size() / 10 + 1);
  const float p_final = mean_tail(p, p.size() / 10 + 1);
  std::printf("\nfinal L2 (tail mean):  GAN-OPC %.1f   PGAN-OPC %.1f   -> %s\n",
              g_final, p_final,
              p_final < g_final ? "PGAN converges lower (matches paper)"
                                : "WARNING: GAN lower (paper expects PGAN)");
  std::printf("curve roughness:       GAN-OPC %.4f  PGAN-OPC %.4f  -> %s\n",
              roughness(g), roughness(p),
              roughness(p) < roughness(g) ? "PGAN smoother (matches paper)"
                                          : "WARNING: GAN smoother");
  std::printf("training time:         GAN-OPC %.1fs  PGAN-OPC %.1fs (paper: ~10h each "
              "on a Titan X)\n",
              gan_stats.seconds, pgan_stats.seconds);
  std::printf("wrote figure7_curves.csv\n");
  return 0;
}
