// Table 1 reproduction: the design rules driving training-layout synthesis,
// plus an audit that the synthesizer honours them at library scale.
#include <algorithm>
#include <cstdio>

#include "layout/benchmark_suite.hpp"
#include "layout/drc.hpp"
#include "layout/synthesizer.hpp"

int main() {
  using namespace ganopc;
  const layout::DesignRules rules = layout::table1_rules();
  std::printf("== Table 1: the design rules used ==\n");
  std::printf("%-24s %10s\n", "Item", "Min Size (nm)");
  std::printf("%-24s %10d\n", "M1 Critical Dimension", rules.min_cd);
  std::printf("%-24s %10d\n", "Pitch", rules.min_pitch);
  std::printf("%-24s %10d\n", "Tip to tip distance", rules.min_tip_to_tip);

  std::printf("\naudit: synthesizing 200 training clips (paper uses 4000)...\n");
  layout::SynthesisConfig cfg;
  const auto library = layout::synthesize_library(cfg, 200, 1847);
  std::size_t violations = 0, shapes = 0;
  std::int32_t min_cd = 1 << 30, min_gap = 1 << 30;
  for (const auto& clip : library) {
    violations += layout::check_design_rules(clip, rules).size();
    shapes += clip.size();
    for (const auto& r : clip.rects())
      min_cd = std::min(min_cd, std::min(r.width(), r.height()));
    for (std::size_t i = 0; i < clip.size(); ++i)
      for (std::size_t j = i + 1; j < clip.size(); ++j)
        min_gap = std::min(min_gap, clip.rects()[i].gap_to(clip.rects()[j]));
  }
  std::printf("clips=%zu shapes=%zu violations=%zu min_cd=%dnm min_gap=%dnm\n",
              library.size(), shapes, violations, min_cd, min_gap);

  std::printf("\nbenchmark suite (areas matched to Table 2):\n");
  const auto suite = layout::make_benchmark_suite();
  std::printf("%-4s %12s %12s %8s\n", "ID", "paper nm^2", "ours nm^2", "err %%");
  for (const auto& bc : suite) {
    const double err = 100.0 *
                       (static_cast<double>(bc.layout.union_area()) -
                        static_cast<double>(bc.target_area)) /
                       static_cast<double>(bc.target_area);
    std::printf("%-4d %12ld %12ld %+8.2f\n", bc.id, static_cast<long>(bc.target_area),
                static_cast<long>(bc.layout.union_area()), err);
  }
  return violations == 0 ? 0 : 1;
}
