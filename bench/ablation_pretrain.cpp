// Ablation B (§3.4): how much ILT-guided pre-training helps.
//
// Sweeps the pre-training budget {0, N/2, N} with a fixed adversarial budget
// and reports the adversarial L2 trajectory. §3.4's claim: pre-training
// provides step-by-step guidance that avoids early local minima, so more
// pre-training should start the adversarial phase lower / converge lower.
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"

namespace {

float tail(const std::vector<float>& v) {
  const std::size_t take = std::max<std::size_t>(1, v.size() / 10);
  return std::accumulate(v.end() - static_cast<std::ptrdiff_t>(take), v.end(), 0.0f) /
         static_cast<float>(take);
}

}  // namespace

int main() {
  using namespace ganopc;
  core::GanOpcConfig cfg = bench::bench_config();
  cfg.gan_iterations = std::min(cfg.gan_iterations, 250);
  const int budgets[3] = {0, cfg.pretrain_iterations / 2, cfg.pretrain_iterations};
  std::printf("== Ablation: ILT-guided pre-training budget (§3.4) ==\n");
  std::printf("adversarial budget %d iterations; pretrain budgets {%d, %d, %d}\n\n",
              cfg.gan_iterations, budgets[0], budgets[1], budgets[2]);

  const litho::LithoSim sim(cfg.optics, litho::ResistConfig{}, cfg.litho_grid,
                            cfg.litho_pixel_nm());
  const core::Dataset dataset = bench::get_dataset(cfg, sim);

  std::vector<float> curves[3];
  float start_l2[3] = {0, 0, 0};
  for (int b = 0; b < 3; ++b) {
    Prng rng(cfg.seed + 21);
    core::Generator g(cfg.gan_grid, cfg.base_channels, rng);
    core::Discriminator d(cfg.gan_grid, cfg.base_channels, rng);
    Prng train_rng(cfg.seed + 22);
    core::GanOpcTrainer trainer(cfg, g, d, dataset, sim, train_rng);
    if (budgets[b] > 0) trainer.pretrain(budgets[b]);
    const core::TrainStats stats = trainer.train(cfg.gan_iterations);
    curves[b] = stats.l2_history;
    start_l2[b] = stats.l2_history.front();
    std::printf("pretrain=%-3d : adversarial L2 %.1f -> tail %.1f\n", budgets[b],
                stats.l2_history.front(), tail(stats.l2_history));
  }

  CsvWriter csv("ablation_pretrain.csv",
                {"iteration", "pretrain_0", "pretrain_half", "pretrain_full"});
  for (std::size_t i = 0; i < curves[0].size(); ++i)
    csv.row_numeric({static_cast<double>(i), curves[0][i], curves[1][i], curves[2][i]});

  std::printf("\nadversarial-phase starting L2: none=%.1f half=%.1f full=%.1f -> %s\n",
              start_l2[0], start_l2[1], start_l2[2],
              start_l2[2] < start_l2[0]
                  ? "pre-training hands the GAN a better starting point (§3.4)"
                  : "WARNING: pre-training did not lower the starting loss");
  std::printf("wrote ablation_pretrain.csv\n");
  return 0;
}
