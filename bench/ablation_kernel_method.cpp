// Ablation: Abbe source-point kernels vs Hopkins TCC-SVD kernels (Eq. 1).
//
// Production simulators (like the contest's lithosim_v4) ship SVD kernels
// because the TCC eigenbasis is the optimal coherent decomposition: for the
// same kernel budget it captures more of the operator than direct source
// sampling. This bench sweeps the kernel count for both factories and
// reports aerial-image RMS error against a converged TCC-32 reference plus
// the one-time kernel build cost.
#include <cmath>
#include <cstdio>

#include "common/csv.hpp"
#include "common/timer.hpp"
#include "geometry/raster.hpp"
#include "litho/lithosim.hpp"

int main() {
  using namespace ganopc;
  std::printf("== Ablation: Abbe sampling vs TCC-SVD kernels ==\n\n");

  geom::Layout clip(geom::Rect{0, 0, 2048, 2048});
  clip.add({800, 400, 880, 1600});
  clip.add({1020, 400, 1100, 1200});
  clip.add({1240, 700, 1320, 1600});
  const geom::Grid mask = geom::rasterize(clip, 16, /*threshold=*/true);

  auto make_sim = [&](int kernels, litho::KernelMethod method, double& build_s) {
    litho::OpticsConfig optics;
    optics.num_kernels = kernels;
    optics.kernel_method = method;
    WallTimer t;
    litho::LithoSim sim(optics, litho::ResistConfig{}, 128, 16);
    build_s = t.seconds();
    return sim;
  };

  double ref_build = 0.0;
  const litho::LithoSim reference =
      make_sim(32, litho::KernelMethod::TccSvd, ref_build);
  const geom::Grid ref_aerial = reference.aerial(mask);
  auto rms_vs_ref = [&](const litho::LithoSim& sim) {
    const geom::Grid aerial = sim.aerial(mask);
    double sq = 0.0;
    for (std::size_t i = 0; i < aerial.data.size(); ++i)
      sq += std::pow(static_cast<double>(aerial.data[i]) - ref_aerial.data[i], 2);
    return std::sqrt(sq / static_cast<double>(aerial.data.size()));
  };

  CsvWriter csv("ablation_kernel_method.csv",
                {"kernels", "abbe_rms", "abbe_build_s", "tcc_rms", "tcc_build_s"});
  std::printf("%-8s | %12s %10s | %12s %10s\n", "kernels", "Abbe RMS", "build(s)",
              "TCC RMS", "build(s)");
  for (const int k : {4, 8, 12, 16, 24}) {
    double abbe_build = 0.0, tcc_build = 0.0;
    const litho::LithoSim abbe = make_sim(k, litho::KernelMethod::AbbeSource, abbe_build);
    const litho::LithoSim tcc = make_sim(k, litho::KernelMethod::TccSvd, tcc_build);
    const double abbe_rms = rms_vs_ref(abbe);
    const double tcc_rms = rms_vs_ref(tcc);
    std::printf("%-8d | %12.6f %10.2f | %12.6f %10.2f\n", k, abbe_rms, abbe_build,
                tcc_rms, tcc_build);
    csv.row_numeric({static_cast<double>(k), abbe_rms, abbe_build, tcc_rms, tcc_build});
  }
  std::printf("\nTCC kernels buy accuracy per kernel at a one-time eigensolve cost\n"
              "(amortized over every later simulation). wrote ablation_kernel_method.csv\n");
  return 0;
}
