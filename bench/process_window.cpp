// Extension: focus-exposure process window analysis.
//
// The paper evaluates dose-only PV bands (+/-2%); its conclusion points to
// process-window-aware optimization as follow-up. This bench exercises the
// simulator's defocus support: a focus-exposure matrix (FEM) for the
// uncorrected mask vs the ILT-optimized mask, reporting the printed CD of a
// reference wire at every (defocus, dose) corner and the resulting window
// (corners within +/-10% of target CD).
#include <cstdio>
#include <vector>

#include "common/csv.hpp"
#include "geometry/raster.hpp"
#include "ilt/ilt.hpp"
#include "litho/lithosim.hpp"

namespace {

using namespace ganopc;

// Printed CD (nm) of the central wire, measured across its mid row.
std::int32_t printed_cd(const geom::Grid& wafer) {
  const std::int32_t mid = wafer.rows / 2;
  std::int32_t run = 0, best = 0;
  for (std::int32_t c = 0; c < wafer.cols; ++c) {
    if (wafer.at(mid, c) >= 0.5f) {
      ++run;
      best = std::max(best, run);
    } else {
      run = 0;
    }
  }
  return best * wafer.pixel_nm;
}

}  // namespace

int main() {
  std::printf("== Extension: focus-exposure process window ==\n\n");

  geom::Layout clip(geom::Rect{0, 0, 2048, 2048});
  clip.add({984, 424, 1064, 1624});  // isolated 80nm wire
  const std::int32_t target_cd = 80;

  // Optimize the mask at nominal focus.
  litho::OpticsConfig nominal;
  const litho::LithoSim nominal_sim(nominal, litho::ResistConfig{}, 256, 8);
  const geom::Grid target = geom::rasterize(clip, 8, /*threshold=*/true);
  ilt::IltConfig ilt_cfg;
  ilt_cfg.max_iterations = 120;
  const ilt::IltEngine engine(nominal_sim, ilt_cfg);
  const geom::Grid opt_mask = engine.optimize(target).mask;

  const std::vector<double> defocus = {0.0, 30.0, 60.0, 90.0};
  const std::vector<float> doses = {0.94f, 0.97f, 1.0f, 1.03f, 1.06f};
  const float nominal_threshold = nominal_sim.threshold();

  CsvWriter csv("process_window.csv",
                {"defocus_nm", "dose", "cd_uncorrected", "cd_ilt"});
  std::printf("%-10s %-6s | %16s %16s\n", "defocus", "dose", "CD uncorrected",
              "CD ILT mask");
  int window_plain = 0, window_ilt = 0, corners = 0;
  for (const double dz : defocus) {
    litho::OpticsConfig optics;
    optics.defocus_nm = dz;
    litho::ResistConfig resist;
    resist.threshold = nominal_threshold;  // resist does not refocus
    const litho::LithoSim sim(optics, resist, 256, 8);
    const geom::Grid aerial_plain = sim.aerial(target);
    const geom::Grid aerial_opt = sim.aerial(opt_mask);
    for (const float dose : doses) {
      const std::int32_t cd_plain = printed_cd(sim.print(aerial_plain, dose));
      const std::int32_t cd_opt = printed_cd(sim.print(aerial_opt, dose));
      std::printf("%-10.0f %-6.2f | %13d nm %13d nm\n", dz, dose, cd_plain, cd_opt);
      csv.row_numeric({dz, dose, static_cast<double>(cd_plain),
                       static_cast<double>(cd_opt)});
      ++corners;
      window_plain += std::abs(cd_plain - target_cd) <= target_cd / 10;
      window_ilt += std::abs(cd_opt - target_cd) <= target_cd / 10;
    }
  }
  std::printf("\ncorners within +/-10%% CD: uncorrected %d/%d, ILT mask %d/%d\n",
              window_plain, corners, window_ilt, corners);
  std::printf("wrote process_window.csv\n");
  return 0;
}
